"""Service mode: open-system multi-tenant traffic on the simulated machine.

Every other harness entry point replays a *closed* batch: a fixed set
of queries, issued by a fixed number of sessions, measured by makespan.
The paper's robustness claim only matters at *steady state*, so this
module runs the machine as a service:

* **Streaming arrivals** over simulated time — Poisson, diurnal
  (sinusoidally modulated rate), or a replayed trace of absolute
  arrival times — from N tenants partitioned into SLO classes.
* **SLO classes** (premium / standard / best-effort by default) with
  per-class deadline multipliers, p99 latency targets, fair-share
  weights, tenant queue caps, and per-class "nearing deadline"
  degradation thresholds (``SLOClass.deadline_safety`` overrides the
  ``SystemConfig.deadline_safety`` knob per query).
* **Fair-share admission** layered *on top of* the PR5 lifecycle: a
  weighted deficit-round-robin dispatcher over per-tenant FIFO queues
  decides *who* goes next; tenant-level shed/degrade (queue caps with
  per-class overflow policies) fires before the global
  :class:`AdmissionController` gate decides *whether the machine* can
  take another query; a starvation guard promotes any tenant whose
  queue head has aged past ``starvation_seconds`` regardless of
  deficits.
* **Concurrent data mutation**: append batches advance the table epoch
  through :class:`~repro.storage.epochs.EpochStore`.  In-flight
  queries stay pinned to the snapshot they were dispatched under (the
  executor runs them on a forked :class:`ExecutionContext`), so every
  completed query is byte-identical to the reference engine evaluated
  over *its* snapshot; drained snapshots retire through the cache
  registry, invalidating zone maps, join indexes, memoised plans, and
  shm manifests.
* **Chaos composition**: PR3 fault storms (``faults=``) hit mid-stream
  and are blamed per tenant; optionally each epoch's warm-up also runs
  through a PR8 self-healing :class:`MorselPool` under process chaos
  as an identity sidecar (``ServiceConfig.pool_chaos``).

Everything here is opt-in: no batch code path ever constructs these
objects, so disabling service mode is zero-overhead.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field, replace
from random import Random
from time import perf_counter
from typing import (Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from repro.core import (
    ChoppingExecutor,
    DataPlacementManager,
    PlacementPrefetcher,
    get_strategy,
)
from repro.engine.execution import (
    AdmissionController,
    ExecutionContext,
    LifecycleConfig,
    QueryCancelled,
    QueryContext,
    deadline_watchdog,
    execute_functional,
    run_plan_eager,
)
from repro.harness.runner import (
    ValidationError,
    canonical_row,
    compare_rows,
    reference_rows,
)
from repro.hardware import HardwareSystem, SystemConfig
from repro.metrics import MetricsCollector
from repro.sim import Environment, Interrupted
from repro.storage import Database, EpochStore
from repro.workloads.base import WorkloadQuery


# -- SLO classes -------------------------------------------------------


@dataclass(frozen=True)
class SLOClass:
    """One service tier: fairness weight, deadline, target, overflow."""

    name: str
    #: deficit-round-robin weight (queries per round relative to 1.0)
    weight: float = 1.0
    #: per-class deadline = base ``deadline_seconds`` x this
    deadline_multiplier: float = 1.0
    #: per-class p99 target = base ``latency_target_seconds`` x this
    target_multiplier: float = 1.0
    #: fraction of the aggregate arrival rate this class generates
    arrival_share: float = 1.0
    #: queued requests per tenant before the overflow policy fires
    queue_cap: int = 8
    #: what happens beyond the cap: "queue" (soft cap — keep
    #: queueing), "shed" (reject now), "degrade-to-cpu" (queue, but
    #: the query runs CPU-only)
    overflow_policy: str = "queue"
    #: per-class "nearing deadline" degradation threshold overriding
    #: ``SystemConfig.deadline_safety`` (None = use the config knob)
    deadline_safety: Optional[float] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("SLO class weight must be positive")
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if self.overflow_policy not in ("queue", "shed", "degrade-to-cpu"):
            raise ValueError(
                "overflow_policy must be queue/shed/degrade-to-cpu")


#: The default three-tier partition.  Premium pays for priority (a
#: dominant fair-share weight, generous deadline, early GPU-degradation
#: to protect the deadline) and generates the least traffic;
#: best-effort generates over half the traffic and is the first to
#: shed under overload.  The premium weight is sized for sustained
#: overload: its DRR share of a saturated machine (16/19 with all
#: three tiers backlogged) must exceed its offered load at the design
#: overload point (0.10 arrival share x 4x overload = 0.4x capacity,
#: with chaos retries inflating service times on top), or its queue
#: grows without bound and no deadline can save its p99.
PREMIUM = SLOClass(
    "premium", weight=16.0, deadline_multiplier=4.0,
    target_multiplier=4.0, arrival_share=0.10, queue_cap=16,
    overflow_policy="queue", deadline_safety=3.0,
)
STANDARD = SLOClass(
    "standard", weight=2.0, deadline_multiplier=2.0, target_multiplier=2.0,
    arrival_share=0.35, queue_cap=6, overflow_policy="degrade-to-cpu",
    deadline_safety=2.0,
)
BEST_EFFORT = SLOClass(
    "best_effort", weight=1.0, deadline_multiplier=1.0,
    target_multiplier=1.0, arrival_share=0.55, queue_cap=3,
    overflow_policy="shed", deadline_safety=1.0,
)
DEFAULT_CLASSES: Tuple[SLOClass, ...] = (PREMIUM, STANDARD, BEST_EFFORT)


# -- configuration -----------------------------------------------------


@dataclass(frozen=True)
class ServiceConfig:
    """Open-system traffic shape, tenancy, SLOs, and mutation knobs."""

    #: simulated seconds of arrival traffic (the run then drains)
    duration_seconds: float = 20.0
    #: arrival model: "poisson", "diurnal", or "trace"
    arrivals: str = "poisson"
    #: aggregate mean arrival rate (queries per simulated second)
    rate: float = 10.0
    #: diurnal modulation: rate(t) = rate * (1 + A sin(2 pi t / P))
    diurnal_amplitude: float = 0.75
    diurnal_period_seconds: float = 8.0
    #: replayed trace: absolute arrival times in simulated seconds
    trace_times: Optional[Tuple[float, ...]] = None
    #: tenants per SLO class (tenant names are "<class>-<i>")
    tenants_per_class: int = 2
    classes: Tuple[SLOClass, ...] = DEFAULT_CLASSES
    #: machine-level gate (the PR5 lifecycle layer underneath)
    max_inflight: int = 4
    heap_headroom_fraction: float = 0.0
    #: what the *global* gate does if fair share overruns it anyway
    global_overload_policy: str = "shed"
    #: base per-query deadline (x class deadline_multiplier); None
    #: disables deadlines and cancellation
    deadline_seconds: Optional[float] = None
    #: base p99 latency target (x class target_multiplier) for the
    #: attainment ledger; None disables attainment accounting
    latency_target_seconds: Optional[float] = None
    #: straggler hedging factor handed to the executor (None = off)
    hedge_factor: Optional[float] = None
    #: promote any tenant whose queue head waited this long
    starvation_seconds: float = 5.0
    #: deficit quantum per dispatcher round (queries per unit weight)
    quantum: float = 1.0
    #: append-batch cadence in simulated seconds (None = no mutation)
    mutation_interval_seconds: Optional[float] = None
    #: fraction of each target table appended per batch
    append_fraction: float = 0.05
    #: tables receiving appends (None = the largest/fact table)
    append_tables: Optional[Tuple[str, ...]] = None
    #: run each epoch warm-up through a PR8 self-healing MorselPool
    #: under process chaos as an identity sidecar (requires shm)
    pool_chaos: bool = False
    pool_jobs: int = 2
    #: cross-check every completed query against the reference engine
    #: evaluated over its pinned snapshot
    validate: bool = True
    seed: int = 11

    def __post_init__(self):
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.arrivals not in ("poisson", "diurnal", "trace"):
            raise ValueError("arrivals must be poisson/diurnal/trace")
        if self.arrivals == "trace" and not self.trace_times:
            raise ValueError("trace arrivals need trace_times")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.tenants_per_class < 1:
            raise ValueError("tenants_per_class must be >= 1")
        if not self.classes:
            raise ValueError("at least one SLO class is required")
        if self.global_overload_policy not in ("shed", "degrade-to-cpu"):
            # "queue" would block the dispatcher loop itself
            raise ValueError(
                "global_overload_policy must be shed or degrade-to-cpu")
        if self.starvation_seconds <= 0:
            raise ValueError("starvation_seconds must be positive")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_seconds <= 0:
            raise ValueError("diurnal_period_seconds must be positive")

    def targets(self) -> Dict[str, float]:
        """Per-class p99 latency targets in simulated seconds."""
        if self.latency_target_seconds is None:
            return {}
        return {
            cls.name: self.latency_target_seconds * cls.target_multiplier
            for cls in self.classes
        }


# -- arrival models ----------------------------------------------------


class _PoissonArrivals:
    def __init__(self, rate: float):
        self.rate = rate

    def next_interarrival(self, now: float, rng: Random) -> float:
        return rng.expovariate(self.rate)


class _DiurnalArrivals:
    """Poisson with a sinusoidal rate — a day cycle in miniature."""

    def __init__(self, rate: float, amplitude: float, period: float):
        self.rate = rate
        self.amplitude = amplitude
        self.period = period

    def rate_at(self, now: float) -> float:
        phase = math.sin(2.0 * math.pi * now / self.period)
        return max(self.rate * (1.0 + self.amplitude * phase),
                   0.05 * self.rate)

    def next_interarrival(self, now: float, rng: Random) -> float:
        return rng.expovariate(self.rate_at(now))


class _TraceArrivals:
    """Replay absolute arrival times (e.g. from a recorded trace)."""

    def __init__(self, times: Sequence[float]):
        self.times = sorted(float(t) for t in times)
        self.cursor = 0

    def next_interarrival(self, now: float, rng: Random) -> float:
        if self.cursor >= len(self.times):
            return math.inf
        t = self.times[self.cursor]
        self.cursor += 1
        return max(t - now, 0.0)


def _arrival_model(service: ServiceConfig):
    if service.arrivals == "poisson":
        return _PoissonArrivals(service.rate)
    if service.arrivals == "diurnal":
        return _DiurnalArrivals(service.rate, service.diurnal_amplitude,
                                service.diurnal_period_seconds)
    return _TraceArrivals(service.trace_times)


# -- tenancy -----------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, an index, and its SLO class."""

    name: str
    index: int
    slo: SLOClass
    #: this tenant's share of the aggregate arrival rate
    share: float


def build_tenants(service: ServiceConfig) -> List[TenantSpec]:
    """Partition tenants over the SLO classes with arrival shares
    normalised so they sum to 1 across all tenants."""
    total_share = sum(cls.arrival_share for cls in service.classes)
    tenants: List[TenantSpec] = []
    index = 0
    for cls in service.classes:
        per_tenant = (cls.arrival_share / total_share
                      / service.tenants_per_class)
        for i in range(service.tenants_per_class):
            tenants.append(TenantSpec(
                name="{}-{}".format(cls.name, i), index=index,
                slo=cls, share=per_tenant,
            ))
            index += 1
    return tenants


class _Request:
    """One arrived query travelling through fair-share admission."""

    __slots__ = ("tenant", "query_index", "arrived_at", "qctx",
                 "watchdog", "overflow_degraded")

    def __init__(self, tenant: TenantSpec, query_index: int,
                 arrived_at: float, qctx: QueryContext, watchdog):
        self.tenant = tenant
        self.query_index = query_index
        self.arrived_at = arrived_at
        self.qctx = qctx
        self.watchdog = watchdog
        #: tenant-level overflow already degraded this query to CPU
        self.overflow_degraded = False


class FairShareAdmission:
    """Weighted deficit-round-robin over per-tenant FIFO queues.

    Tenant-level policy (queue caps, shed/degrade overflow, starvation
    guard) lives here — *above* the global admission gate, so a noisy
    best-effort tenant sheds before it can push a premium query into
    the machine-level overload policy.
    """

    def __init__(self, tenants: Sequence[TenantSpec], quantum: float,
                 starvation_seconds: float, metrics: MetricsCollector):
        self.quantum = quantum
        self.starvation_seconds = starvation_seconds
        self.metrics = metrics
        self._queues: Dict[str, Deque[_Request]] = {
            t.name: deque() for t in tenants
        }
        self._weights = {t.name: t.slo.weight for t in tenants}
        self._deficits: Dict[str, float] = {t.name: 0.0 for t in tenants}
        self._ring = [t.name for t in tenants]
        self._cursor = 0

    # -- enqueue ------------------------------------------------------

    def offer(self, request: _Request) -> str:
        """Apply the tenant-level overflow policy; returns "queued",
        "shed", or "degraded" (queued CPU-only)."""
        tenant = request.tenant
        queue = self._queues[tenant.name]
        if len(queue) >= tenant.slo.queue_cap:
            policy = tenant.slo.overflow_policy
            if policy == "shed":
                self.metrics.record_shed(
                    request.qctx.name, tenant=tenant.name,
                    slo_class=tenant.slo.name)
                return "shed"
            if policy == "degrade-to-cpu":
                # degrade first, shed at twice the cap: an unbounded
                # CPU-only backlog would parasitise machine capacity
                # that higher tiers are paying for
                if len(queue) >= 2 * tenant.slo.queue_cap:
                    self.metrics.record_shed(
                        request.qctx.name, tenant=tenant.name,
                        slo_class=tenant.slo.name)
                    return "shed"
                request.overflow_degraded = True
                self.metrics.record_degraded(
                    request.qctx.name, tenant=tenant.name,
                    slo_class=tenant.slo.name)
                queue.append(request)
                return "degraded"
            # "queue": soft cap — keep queueing
        queue.append(request)
        return "queued"

    # -- dispatch -----------------------------------------------------

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def next_request(self, now: float) -> Optional[_Request]:
        """Pick the next request to dispatch, or None when idle.

        The starvation guard runs first: the oldest queue head that
        has waited past ``starvation_seconds`` is served regardless of
        deficit state, so weight-1 tenants cannot be starved by a
        persistent premium backlog."""
        starving: Optional[str] = None
        oldest = now - self.starvation_seconds
        for name, queue in self._queues.items():
            if queue and queue[0].arrived_at <= oldest:
                if (starving is None
                        or queue[0].arrived_at
                        < self._queues[starving][0].arrived_at):
                    starving = name
        if starving is not None:
            self.metrics.record_starvation_promotion()
            self._deficits[starving] = max(
                self._deficits[starving] - 1.0, 0.0)
            return self._queues[starving].popleft()
        if not self.pending():
            return None
        # deficit round-robin: each pass tops every backlogged tenant
        # up by quantum x weight; a tenant with deficit >= 1 serves one
        ring = self._ring
        n = len(ring)
        for _round in range(64):  # bounded: weights are positive
            for step in range(n):
                name = ring[(self._cursor + step) % n]
                queue = self._queues[name]
                if not queue:
                    # an idle tenant banks nothing (classic DRR)
                    self._deficits[name] = 0.0
                    continue
                if self._deficits[name] >= 1.0:
                    self._deficits[name] -= 1.0
                    self._cursor = (self._cursor + step + 1) % n
                    return queue.popleft()
            for name in ring:
                if self._queues[name]:
                    self._deficits[name] = min(
                        self._deficits[name]
                        + self.quantum * self._weights[name],
                        float(len(self._queues[name])),
                    )
        raise RuntimeError("deficit round-robin failed to converge")


# -- results -----------------------------------------------------------


@dataclass
class ServiceResult:
    """Everything one service run produced."""

    metrics: MetricsCollector
    #: per-SLO-class ledger (MetricsCollector.slo_ledger)
    ledger: Dict[str, Dict[str, float]]
    tenant_ledger: Dict[str, Dict[str, float]]
    #: chaos blame per tenant (fault classes, aborts, wasted, retries)
    tenant_faults: Dict[str, Dict[str, float]]
    #: per-class p99 targets used for attainment (empty = disabled)
    targets: Dict[str, float]
    arrivals: int
    completed: int
    shed: int
    degraded: int
    cancelled: int
    #: append epochs advanced during the run
    epochs: int
    #: True when every completed query matched the reference engine
    #: over its pinned snapshot (vacuously True when validate=False)
    identical: bool
    divergences: List[str]
    strategy: str
    faults_injected: int = 0
    fault_digest: Optional[str] = None
    lifecycle_enabled: bool = True

    @property
    def simulated_seconds(self) -> float:
        return self.metrics.workload_seconds

    def conserved(self) -> bool:
        """Every arrival is accounted for exactly once: completed,
        shed (tenant- or machine-level), or cancelled.  Hedging races
        and retries must never double-count."""
        return self.arrivals == self.completed + self.shed + self.cancelled


# -- the service loop --------------------------------------------------


class _ServiceRun:
    def __init__(self, database: Database,
                 workload_factory: Callable[[Database],
                                            List[WorkloadQuery]],
                 workload_name: str, strategy: str,
                 config: SystemConfig, service: ServiceConfig,
                 placement_policy: str, cpu_workers: int,
                 gpu_workers: int, scheduling: str, faults):
        from repro.faults import FaultConfig, FaultInjector

        self.service = service
        self.workload_factory = workload_factory
        self.workload_name = workload_name
        self.strategy_name = strategy
        self.config = config
        self.fault_config = FaultConfig.coerce(faults)
        self.env = Environment()
        self.metrics = MetricsCollector()
        self.hardware = HardwareSystem(self.env, config, self.metrics)
        self.hardware.gpu_cache.policy = placement_policy
        self.injector = None
        if self.fault_config is not None and self.fault_config.enabled:
            self.injector = FaultInjector(
                self.fault_config, clock=lambda: self.env.now)
            self.hardware.install_faults(self.injector)
        self.ctx = ExecutionContext(self.hardware, database)
        self.strategy = get_strategy(strategy)
        self.rng = Random(service.seed)
        self.tenants = build_tenants(service)
        self.store = EpochStore(database)
        self.queries = workload_factory(database)
        if not self.queries:
            raise ValueError("service mode needs a non-empty workload")
        self.epoch_queries: Dict[int, List[WorkloadQuery]] = {
            0: self.queries}
        self.epoch_ctx: Dict[int, ExecutionContext] = {0: self.ctx}
        self._references: Dict[Tuple[int, str], list] = {}
        self.divergences: List[str] = []
        self.completed = 0
        self._rr: Counter = Counter()  # per-tenant query round-robin
        self._stir = self.env.event()
        lifecycle = LifecycleConfig(
            max_inflight=service.max_inflight,
            overload_policy=service.global_overload_policy,
            heap_headroom_fraction=service.heap_headroom_fraction,
            hedge_factor=service.hedge_factor,
        )
        self.lifecycle = lifecycle
        self.controller = AdmissionController(
            self.env, self.hardware, lifecycle, metrics=self.metrics)
        self.fair = FairShareAdmission(
            self.tenants, service.quantum, service.starvation_seconds,
            self.metrics)
        self.chopper: Optional[ChoppingExecutor] = None
        if self.strategy.executor == "chopping":
            self.chopper = ChoppingExecutor(
                self.ctx, self.strategy, cpu_workers=cpu_workers,
                gpu_workers=gpu_workers, scheduling=scheduling,
                lifecycle=lifecycle,
            )

    # -- platform warm-up (mirrors run_workload) ----------------------

    def warm(self, warm_cache: bool, placement_policy: str) -> None:
        wall = perf_counter()
        self.store.base.statistics.reset()
        self._functional_warm(self.store.base, self.queries)
        self.metrics.record_phase("numpy", perf_counter() - wall)
        placement = DataPlacementManager(
            self.store.base,
            caches=[device.cache for device in self.hardware.gpus],
            policy=placement_policy,
        )
        if warm_cache:
            placement.apply_placement()
            if not self.strategy.uses_data_placement:
                for device in self.hardware.gpus:
                    for key in device.cache.keys:
                        device.cache.unpin(key)
        elif self.strategy.uses_data_placement:
            placement.apply_placement()
        if (self.hardware.copy_engine is not None
                and self.config.prefetch_depth > 0):
            PlacementPrefetcher(
                self.hardware, placement, depth=self.config.prefetch_depth
            ).start()
        if self.config.split:
            from repro.engine.execution.split import SplitState

            split_state = SplitState(self.config, self.ctx.cost_model,
                                     self.strategy)
            split_state.prepare(self.store.base, self.queries,
                                metrics=self.metrics)
            self.ctx.split = split_state

    def _functional_warm(self, database: Database,
                         queries: List[WorkloadQuery]) -> None:
        """Memoise the functional results for one snapshot's templates
        (fused morsel path when the config enables it)."""
        if self.config.morsels:
            from repro.engine import morsel
            from repro.storage import shm as shm_store

            before = morsel.snapshot_stats()
            shm_before = dict(shm_store.stats)
            with morsel.active(self.config.morsel_rows):
                for query in queries:
                    execute_functional(query.template_plan(), database)
            self.metrics.record_morsel_stats(
                {key: value - before[key]
                 for key, value in morsel.snapshot_stats().items()},
                {key: value - shm_before[key]
                 for key, value in shm_store.stats.items()},
            )
        else:
            for query in queries:
                execute_functional(query.template_plan(), database)

    # -- arrivals -----------------------------------------------------

    def _arrivals(self):
        service = self.service
        model = _arrival_model(service)
        names = [t.name for t in self.tenants]
        shares = [t.share for t in self.tenants]
        by_name = {t.name: t for t in self.tenants}
        while True:
            dt = model.next_interarrival(self.env.now, self.rng)
            if not math.isfinite(dt):
                return
            if self.env.now + dt >= service.duration_seconds:
                return
            yield self.env.timeout(dt)
            tenant = by_name[
                self.rng.choices(names, weights=shares)[0]]
            self._on_arrival(tenant)

    def _on_arrival(self, tenant: TenantSpec) -> None:
        service = self.service
        queries = self.epoch_queries[self.store.epoch]
        query_index = (tenant.index + self._rr[tenant.name]) \
            % len(queries)
        self._rr[tenant.name] += 1
        name = queries[query_index].name
        self.metrics.record_arrival(tenant.name, tenant.slo.name)
        deadline = None
        if service.deadline_seconds is not None:
            deadline = (service.deadline_seconds
                        * tenant.slo.deadline_multiplier)
        qctx = QueryContext(
            self.env, name, user=tenant.index, metrics=self.metrics,
            deadline_seconds=deadline, tenant=tenant.name,
            slo_class=tenant.slo.name,
            deadline_safety=tenant.slo.deadline_safety,
        )
        watchdog = None
        if deadline is not None:
            # starts at arrival: tenant-queue time counts toward the
            # deadline, exactly like the PR5 admission queue
            watchdog = self.env.process(deadline_watchdog(qctx))
            watchdog.defused = True
        request = _Request(tenant, query_index, self.env.now, qctx,
                           watchdog)
        outcome = self.fair.offer(request)
        if outcome == "shed":
            self._finish_request(request)
            return
        self._wake()

    # -- dispatcher ---------------------------------------------------

    def _dispatcher(self):
        while True:
            while self.controller.has_capacity():
                request = self.fair.next_request(self.env.now)
                if request is None:
                    break
                if request.qctx.cancelled:
                    # deadline fired while queued at the tenant level
                    self._record_cancelled(request)
                    self._finish_request(request)
                    continue
                decision = yield from self.controller.admit(request.qctx)
                tenant = request.tenant
                if decision == "shed":
                    # machine-level shed: the global gate lost the
                    # headroom race; blame the tenant class too
                    self.metrics.sheds_by_tenant[tenant.name] += 1
                    self.metrics.sheds_by_class[tenant.slo.name] += 1
                    self._finish_request(request)
                    continue
                if decision == "cancelled":
                    self._record_cancelled(request)
                    self._finish_request(request)
                    continue
                if decision == "degrade":
                    request.qctx.force_cpu = True
                    self.metrics.degraded_by_tenant[tenant.name] += 1
                    self.metrics.degraded_by_class[tenant.slo.name] += 1
                if request.overflow_degraded:
                    request.qctx.force_cpu = True
                self.env.process(self._serve(request))
            yield self._stir
            self._stir = self.env.event()

    def _wake(self) -> None:
        if not self._stir.triggered:
            self._stir.succeed()

    # -- per-query execution ------------------------------------------

    def _serve(self, request: _Request):
        admitted_at = self.env.now
        epoch = self.store.pin()
        queries = self.epoch_queries[epoch]
        query = queries[request.query_index % len(queries)]
        rctx = self.epoch_ctx[epoch]
        qctx = request.qctx
        tenant = request.tenant
        result = None
        try:
            wall = perf_counter()
            plan = query.instantiate()
            self.strategy.prepare_plan(rctx, plan)
            self.metrics.record_phase("plan", perf_counter() - wall)
            if self.chopper is not None:
                result = yield self.chopper.submit(
                    plan, qctx, ctx=rctx if epoch > 0 else None)
            else:
                result = yield run_plan_eager(rctx, plan, self.strategy,
                                              qctx)
        except (QueryCancelled, Interrupted):
            self._record_cancelled(request)
        else:
            self.metrics.record_query(
                query.name, tenant.index, request.arrived_at,
                self.env.now, tenant=tenant.name,
                slo_class=tenant.slo.name, admitted_at=admitted_at,
            )
            self.completed += 1
            if self.service.validate and query.spec is not None:
                self._check_identity(epoch, query, result)
        self._finish_request(request)
        self.controller.release()
        for _ in range(self.store.unpin(epoch)):
            self.metrics.record_snapshot_retired()
        self._wake()

    def _record_cancelled(self, request: _Request) -> None:
        self.metrics.record_cancelled_query(
            request.qctx.name, request.tenant.index, request.arrived_at,
            self.env.now, request.qctx.cancel_reason or "cancelled",
            tenant=request.tenant.name,
            slo_class=request.tenant.slo.name,
        )

    def _finish_request(self, request: _Request) -> None:
        request.qctx.finish()
        if request.watchdog is not None and request.watchdog.is_alive:
            request.watchdog.interrupt()

    def _check_identity(self, epoch: int, query: WorkloadQuery,
                        result) -> None:
        wall = perf_counter()
        key = (epoch, query.name)
        want = self._references.get(key)
        if want is None:
            want = reference_rows(self.store.snapshot(epoch), query)
            self._references[key] = want
        got = sorted(map(canonical_row, result.payload.row_tuples()))
        try:
            compare_rows(query.name, got, want)
        except ValidationError as error:
            self.divergences.append(
                "epoch {}: {}".format(epoch, error))
        self.metrics.record_phase("validate", perf_counter() - wall)

    # -- concurrent mutation ------------------------------------------

    def _mutator(self):
        service = self.service
        interval = service.mutation_interval_seconds
        while True:
            yield self.env.timeout(interval)
            if self.env.now >= service.duration_seconds:
                return
            wall = perf_counter()
            snapshot = self.store.advance(
                service.append_fraction, service.append_tables)
            queries = self.workload_factory(snapshot)
            self._functional_warm(snapshot, queries)
            if service.pool_chaos:
                self._pool_sidecar(snapshot, queries)
            self.epoch_queries[self.store.epoch] = queries
            self.epoch_ctx[self.store.epoch] = \
                self.ctx.with_database(snapshot)
            self.metrics.record_service_epoch()
            self.metrics.record_phase("mutate", perf_counter() - wall)

    def _pool_sidecar(self, snapshot: Database,
                      queries: List[WorkloadQuery]) -> None:
        """Run the new epoch through a self-healing MorselPool under
        process chaos and cross-check its answers against the reference
        engine — PR8 composition as an identity sidecar."""
        from repro.storage import shm

        if not shm.available():
            return
        from repro.harness.parallel import MorselPool

        workload = (self.workload_name
                    if self.workload_name in ("ssb", "tpch") else "sql")
        sql_queries = [q for q in queries if q.sql is not None]
        if workload == "sql" and not sql_queries:
            return
        with MorselPool(snapshot, sql_queries or queries,
                        workload=workload, jobs=self.service.pool_jobs,
                        faults=self.fault_config) as pool:
            results = pool.run_queries()
            pool.record_metrics(self.metrics)
        for query in (sql_queries or queries):
            if query.spec is None or query.name not in results:
                continue
            key = (self.store.epoch, query.name)
            want = self._references.get(key)
            if want is None:
                want = reference_rows(snapshot, query)
                self._references[key] = want
            got = sorted(map(
                canonical_row, results[query.name].payload.row_tuples()))
            try:
                compare_rows(query.name, got, want)
            except ValidationError as error:
                self.divergences.append(
                    "epoch {} (chaos pool): {}".format(
                        self.store.epoch, error))

    # -- run ----------------------------------------------------------

    def run(self) -> ServiceResult:
        env = self.env
        env.process(self._arrivals())
        env.process(self._dispatcher())
        if self.service.mutation_interval_seconds is not None:
            env.process(self._mutator())
        wall = perf_counter()
        env.run()
        self.metrics.record_phase(
            "des",
            perf_counter() - wall
            - self.metrics.phase_seconds.get("plan", 0.0)
            - self.metrics.phase_seconds.get("validate", 0.0)
            - self.metrics.phase_seconds.get("mutate", 0.0),
        )
        metrics = self.metrics
        ends = [q.end for q in metrics.queries]
        ends.extend(q.end for q in metrics.cancelled_queries)
        metrics.workload_seconds = max(ends, default=env.now)
        targets = self.service.targets()
        shed = int(sum(metrics.sheds_by_tenant.values()))
        return ServiceResult(
            metrics=metrics,
            ledger=metrics.slo_ledger(targets),
            tenant_ledger=metrics.tenant_ledger(),
            tenant_faults=metrics.tenant_fault_report(),
            targets=targets,
            arrivals=int(sum(metrics.arrivals_by_tenant.values())),
            completed=self.completed,
            shed=shed,
            degraded=int(sum(metrics.degraded_by_tenant.values())),
            cancelled=len(metrics.cancelled_queries),
            epochs=self.store.epoch,
            identical=not self.divergences,
            divergences=self.divergences,
            strategy=self.strategy_name,
            faults_injected=(self.injector.total_injected
                            if self.injector else 0),
            fault_digest=(self.injector.schedule_digest()
                          if self.injector else None),
        )


def resolve_workload_factory(
    workload: str,
    names: Optional[Sequence[str]] = None,
) -> Callable[[Database], List[WorkloadQuery]]:
    """Workload-module factory: rebuilt per epoch snapshot."""
    from repro.workloads import ssb, tpch

    modules = {"ssb": ssb, "tpch": tpch}
    if workload not in modules:
        raise ValueError("workload must be one of {}".format(
            sorted(modules)))
    module = modules[workload]
    name_list = list(names) if names else None

    def factory(database: Database) -> List[WorkloadQuery]:
        if name_list:
            return module.workload(database, name_list)
        return module.workload(database)

    return factory


def run_service(
    database: Database,
    workload_factory=None,
    strategy: str = "critical_path",
    config: Optional[SystemConfig] = None,
    service: Optional[ServiceConfig] = None,
    workload: str = "ssb",
    query_names: Optional[Sequence[str]] = None,
    warm_cache: bool = True,
    placement_policy: str = "lfu",
    cpu_workers: int = 4,
    gpu_workers: int = 2,
    scheduling: str = "fifo",
    faults=None,
) -> ServiceResult:
    """Run the simulated machine as a multi-tenant service.

    ``workload_factory`` (``database -> [WorkloadQuery]``) is called
    once per table epoch so queries always bind to their snapshot;
    when omitted it is resolved from ``workload``/``query_names``.
    All other knobs mirror :func:`run_workload`.
    """
    config = config if config is not None else SystemConfig()
    service = service if service is not None else ServiceConfig()
    if workload_factory is None:
        workload_factory = resolve_workload_factory(workload, query_names)
    run = _ServiceRun(
        database, workload_factory, workload, strategy, config, service,
        placement_policy, cpu_workers, gpu_workers, scheduling, faults,
    )
    run.warm(warm_cache, placement_policy)
    return run.run()


__all__ = [
    "BEST_EFFORT",
    "DEFAULT_CLASSES",
    "FairShareAdmission",
    "PREMIUM",
    "STANDARD",
    "SLOClass",
    "ServiceConfig",
    "ServiceResult",
    "TenantSpec",
    "build_tenants",
    "resolve_workload_factory",
    "run_service",
]
