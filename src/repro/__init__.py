"""repro — reproduction of "Robust Query Processing in Co-Processor-
accelerated Databases" (Bress, Funke, Teubner; SIGMOD 2016).

A column-store query engine with a simulated GPU co-processor, the
paper's placement strategies (Data-Driven, Critical Path, run-time
HyPE placement), the query-chopping executor, and the full SSBM /
TPC-H / micro-benchmark workloads.

Quick start::

    from repro import ssb, run_workload
    db = ssb.generate(scale_factor=10)
    result = run_workload(db, ssb.workload(db), "data_driven_chopping")
    print(result.seconds, result.metrics.summary())

See ``examples/`` for runnable scenarios and ``repro.harness.experiments``
for the drivers regenerating every figure of the paper.
"""

from repro.core import (
    ChoppingExecutor,
    DataPlacementManager,
    PlacementStrategy,
    STRATEGY_NAMES,
    get_strategy,
)
from repro.engine import Planner, execute_reference
from repro.engine.execution import (
    ExecutionContext,
    execute_functional,
    run_plan_eager,
)
from repro.hardware import (
    COGADB_PROFILE,
    OCELOT_PROFILE,
    HardwareSystem,
    SystemConfig,
)
from repro.harness import ExperimentResult, WorkloadResult, run_workload
from repro.metrics import MetricsCollector
from repro.sim import Environment
from repro.sql import QuerySpec, bind, parse
from repro.storage import Column, ColumnType, Database, Table
from repro.workloads import WorkloadQuery, micro, sql_workload, ssb, tpch

__version__ = "1.0.0"

__all__ = [
    "COGADB_PROFILE",
    "ChoppingExecutor",
    "Column",
    "ColumnType",
    "DataPlacementManager",
    "Database",
    "Environment",
    "ExecutionContext",
    "ExperimentResult",
    "HardwareSystem",
    "MetricsCollector",
    "OCELOT_PROFILE",
    "PlacementStrategy",
    "Planner",
    "QuerySpec",
    "STRATEGY_NAMES",
    "SystemConfig",
    "Table",
    "WorkloadQuery",
    "WorkloadResult",
    "bind",
    "execute_functional",
    "execute_reference",
    "get_strategy",
    "micro",
    "parse",
    "run_plan_eager",
    "run_workload",
    "sql_workload",
    "ssb",
    "tpch",
]
