"""Heap-contention stress tests: device state must be fully rolled
back after mid-operator aborts.

Runs concurrent queries through the chopping executor and the
vectorized executor against a deliberately tiny GPU (heap contention →
genuine OOM aborts) while every injectable fault class fires at a high
rate.  After the runs every device invariant must hold: the heap is
empty, no allocation leaked, every cache entry's refcount is back to
zero, and no processor still thinks it has active jobs — regardless of
where in the operator lifecycle the abort struck."""

import pytest

from tests.conftest import make_context
from repro.core import ChoppingExecutor
from repro.core.placement import DataDrivenRuntime, RuntimeHype
from repro.engine import Planner
from repro.engine.execution import VectorizedExecutor, execute_functional
from repro.faults import FaultConfig, FaultInjector
from repro.hardware import SystemConfig
from repro.hardware.calibration import MIB
from repro.sql import bind


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region order by s desc"
)

#: aggressive rates + a fast breaker so one short run exercises aborts
#: in every lifecycle stage and full breaker cycles
STRESS = FaultConfig.uniform(
    0.3, seed=17, breaker_threshold=2, breaker_open_seconds=0.005,
    max_retries=2, stall_seconds=0.002,
)


def make_faulty_context(database, fault_config, **config_kwargs):
    """make_context + fault injection installed *before* the execution
    context is built (so the resilience layer sees the config)."""
    from repro.engine.execution import ExecutionContext
    from repro.hardware import HardwareSystem
    from repro.sim import Environment

    defaults = dict(gpu_memory_bytes=5 * MIB, gpu_cache_bytes=4 * MIB)
    defaults.update(config_kwargs)
    env = Environment()
    hardware = HardwareSystem(env, SystemConfig(**defaults))
    injector = FaultInjector(fault_config, clock=lambda: env.now)
    hardware.install_faults(injector)
    ctx = ExecutionContext(hardware, database)
    return env, hardware, ctx


def assert_devices_rolled_back(hardware):
    """Every per-device invariant the abort protocol must restore."""
    for device in hardware.gpus:
        assert device.heap.used == 0, \
            "{}: {} heap bytes leaked".format(device.name, device.heap.used)
        assert device.heap.live_allocations == 0
        for key in device.cache.keys:
            assert device.cache.entry(key).refcount == 0, \
                "{}: cache entry {} still referenced".format(
                    device.name, key)
        assert device.processor.active_jobs == 0
    assert hardware.cpu.active_jobs == 0


def make_plan(db, name="q"):
    return Planner(db).plan(bind(JOIN_SQL, db, name=name))


def test_chopping_rolls_back_after_faulted_aborts(toy_db):
    expected = execute_functional(make_plan(toy_db), toy_db)
    env, hw, ctx = make_faulty_context(toy_db, STRESS)
    chopper = ChoppingExecutor(ctx, RuntimeHype(), cpu_workers=4,
                               gpu_workers=2)
    events = [chopper.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(8)]
    env.run()
    assert all(event.triggered and event.ok for event in events)
    # the stress actually aborted mid-operator, and more than one
    # fault class struck
    assert hw.metrics.aborts > 0
    assert hw.injector.total_injected > 0
    for event in events:
        assert event.value.payload.row_tuples() \
            == expected.payload.row_tuples()
    assert_devices_rolled_back(hw)


def test_vectorized_rolls_back_after_faulted_aborts(toy_db):
    expected = execute_functional(make_plan(toy_db), toy_db)
    # warm cache + data-driven placement so pipelines actually run on
    # the GPU (cost-based placement would keep this toy plan on the CPU)
    env, hw, ctx = make_faulty_context(
        toy_db, STRESS, gpu_memory_bytes=64 * MIB, gpu_cache_bytes=64 * MIB,
    )
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes)
    executor = VectorizedExecutor(ctx, DataDrivenRuntime())
    events = [executor.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(8)]
    env.run()
    assert all(event.triggered and event.ok for event in events)
    assert hw.injector.total_injected > 0
    for event in events:
        assert event.value.payload.row_tuples() \
            == expected.payload.row_tuples()
    assert_devices_rolled_back(hw)


def test_rollback_under_genuine_heap_contention_plus_faults(toy_db):
    """OOM aborts (the paper's fault) and injected transient faults
    interleave: a barely-fitting heap plus every fault class at once."""
    env, hw, ctx = make_faulty_context(
        toy_db, STRESS, gpu_memory_bytes=2 * MIB, gpu_cache_bytes=1 * MIB,
    )
    chopper = ChoppingExecutor(ctx, RuntimeHype(), cpu_workers=4,
                               gpu_workers=4)
    events = [chopper.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(10)]
    env.run()
    assert all(event.triggered and event.ok for event in events)
    assert hw.metrics.aborts > 0
    assert_devices_rolled_back(hw)
    # wasted time was attributed, never negative
    assert hw.metrics.wasted_seconds >= 0.0


def test_device_reset_flushes_cache_without_breaking_refcounts(toy_db):
    """A forced reset while an operator holds cache entries defers the
    eviction of in-use entries to their final release."""
    from repro.hardware import HardwareSystem
    from repro.sim import Environment

    env = Environment()
    hw = HardwareSystem(env, SystemConfig(gpu_memory_bytes=64 * MIB,
                                          gpu_cache_bytes=16 * MIB))
    cache = hw.gpu_cache
    cache.admit("held", 1024)
    cache.admit("idle", 2048)
    cache.acquire("held")
    cache.reset()
    # the idle entry is gone at once; the held one survives the reset
    assert "idle" not in cache
    assert "held" in cache
    assert cache.entry("held").refcount == 1
    # ... until its holder lets go
    cache.release("held")
    assert "held" not in cache


def test_breaker_routes_to_cpu_while_open(toy_db):
    """With a permanently failing GPU every query still answers, via
    the CPU, and the breaker records the open."""
    expected = execute_functional(make_plan(toy_db), toy_db)
    env, hw, ctx = make_faulty_context(
        toy_db,
        FaultConfig(kernel=1.0, seed=5, breaker_threshold=1,
                    breaker_open_seconds=1e9, max_retries=1),
        gpu_memory_bytes=64 * MIB, gpu_cache_bytes=16 * MIB,
    )
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    events = [chopper.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(4)]
    env.run()
    for event in events:
        assert event.value.payload.row_tuples() \
            == expected.payload.row_tuples()
    states = ctx.resilience.breaker_states()
    assert any(state == "open" for state in states.values())
    assert_devices_rolled_back(hw)
