"""Tests for the multi-co-processor extension (Sec. 6.3 scale-up)."""

import pytest

from tests.conftest import make_context
from repro.core import ChoppingExecutor, DataPlacementManager, get_strategy
from repro.core.placement import DataDrivenRuntime, RuntimeHype
from repro.engine import Planner
from repro.engine.execution import execute_functional
from repro.harness import run_workload
from repro.hardware import DeviceCache, HardwareSystem, SystemConfig
from repro.hardware.calibration import GIB, MIB
from repro.sim import Environment
from repro.sql import bind
from repro.workloads import ssb


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region"
)


def multi_config(gpus=2, **kwargs):
    defaults = dict(gpu_count=gpus, gpu_memory_bytes=1 * GIB,
                    gpu_cache_bytes=256 * MIB)
    defaults.update(kwargs)
    return SystemConfig(**defaults)


class TestHardwareSystem:
    def test_device_naming(self):
        env = Environment()
        hardware = HardwareSystem(env, multi_config(3))
        assert hardware.gpu_names == ["gpu", "gpu2", "gpu3"]
        assert hardware.device("gpu2").processor.name == "gpu2"
        with pytest.raises(KeyError):
            hardware.device("gpu9")

    def test_first_device_aliases(self):
        env = Environment()
        hardware = HardwareSystem(env, multi_config(2))
        assert hardware.gpu is hardware.gpus[0].processor
        assert hardware.gpu_heap is hardware.gpus[0].heap
        assert hardware.gpu_cache is hardware.gpus[0].cache

    def test_devices_have_independent_memory(self):
        env = Environment()
        hardware = HardwareSystem(env, multi_config(2))
        hardware.gpus[0].heap.allocate(100)
        assert hardware.gpus[1].heap.used == 0
        hardware.gpus[0].cache.admit("x", 10)
        assert "x" not in hardware.gpus[1].cache

    def test_processor_list_includes_all(self):
        env = Environment()
        hardware = HardwareSystem(env, multi_config(2))
        names = [p.name for p in hardware.processors]
        assert names == ["cpu", "gpu", "gpu2"]

    def test_gpu_count_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(gpu_count=0)


class TestMultiDevicePlacementManager:
    def make_manager(self, db, n_caches, capacity):
        caches = [DeviceCache(capacity) for _ in range(n_caches)]
        return DataPlacementManager(db, caches=caches, policy="lfu"), caches

    def test_small_columns_replicated(self, toy_db):
        toy_db.statistics.reset()
        for column in toy_db.columns():
            toy_db.statistics.record_access(column.key)
        # store columns are tiny relative to this capacity
        manager, caches = self.make_manager(toy_db, 2, 10 * MIB)
        manager.apply_placement()
        for cache in caches:
            assert "store.id" in cache

    def test_large_columns_partitioned_not_duplicated(self, toy_db):
        toy_db.statistics.reset()
        for column in toy_db.columns():
            toy_db.statistics.record_access(column.key)
        # sales columns are 4 MB nominal; capacity of one column each
        manager, caches = self.make_manager(toy_db, 2, 5 * MIB)
        manager.apply_placement()
        fact_keys = {"sales.skey", "sales.amount", "sales.price"}
        placements = [set(c.keys) & fact_keys for c in caches]
        assert not placements[0] & placements[1]  # disjoint
        assert placements[0] | placements[1]  # something cached

    def test_single_cache_keeps_prefix_semantics(self, toy_db):
        toy_db.statistics.reset()
        for i, column in enumerate(toy_db.table("sales").columns):
            for _ in range(3 - i):
                toy_db.statistics.record_access(column.key)
        manager, caches = self.make_manager(toy_db, 1, 5 * MIB)
        cached = manager.apply_placement()
        assert cached == ["sales.skey"]  # the hottest one that fits

    def test_cache_and_caches_mutually_exclusive(self, toy_db):
        with pytest.raises(ValueError):
            DataPlacementManager(toy_db)
        with pytest.raises(ValueError):
            DataPlacementManager(toy_db, cache=DeviceCache(10),
                                 caches=[DeviceCache(10)])


class TestMultiGpuExecution:
    def test_results_correct_across_devices(self, toy_db):
        env, hw, ctx = make_context(toy_db, multi_config(3))
        for device in hw.gpus:
            for column in toy_db.columns():
                device.cache.admit(column.key, column.nominal_bytes,
                                   pinned=True)
        plan = Planner(toy_db).plan(bind(JOIN_SQL, toy_db, name="q"))
        expected = execute_functional(plan, toy_db).payload.row_tuples()
        chopper = ChoppingExecutor(ctx, RuntimeHype())
        done = chopper.submit(plan.clone())
        env.run()
        assert done.value.payload.row_tuples() == expected

    def test_chopping_has_a_queue_per_device(self, toy_db):
        env, hw, ctx = make_context(toy_db, multi_config(3))
        chopper = ChoppingExecutor(ctx, RuntimeHype())
        assert set(chopper.ready) == {"cpu", "gpu", "gpu2", "gpu3"}

    def test_data_driven_hops_to_the_device_with_the_columns(self, toy_db):
        env, hw, ctx = make_context(toy_db, multi_config(2))
        # partition the fact columns by hand: amount on gpu, skey on gpu2
        first, second = hw.gpus
        for key in ("sales.amount",):
            column = toy_db.column(key)
            first.cache.admit(key, column.nominal_bytes, pinned=True)
        for key in ("sales.skey", "store.id", "store.region"):
            column = toy_db.column(key)
            second.cache.admit(key, column.nominal_bytes, pinned=True)
        strategy = DataDrivenRuntime()
        plan = Planner(toy_db).plan(bind(JOIN_SQL, toy_db, name="q"))
        scan = [op for op in plan.leaves if op.required_columns()][0]
        assert strategy.choose_processor(ctx, scan, []) == "gpu"
        # execute the scan on gpu, then ask about the join: its key
        # columns live on gpu2, so the intermediate hops devices
        scan_result = scan.run(toy_db, [])
        scan_result.location = "gpu"
        join = [op for op in plan.operators if op.kind == "join"][0]
        bare = [c for c in join.children if not c.required_columns()][0]
        bare_result = bare.run(toy_db, [])
        bare_result.location = "gpu"
        children = [scan_result, bare_result]
        if join.children[0].required_columns():
            children = [scan_result, bare_result]
        else:
            children = [bare_result, scan_result]
        assert strategy.choose_processor(ctx, join, children) == "gpu2"

    def test_cpu_child_still_ends_the_chain(self, toy_db):
        env, hw, ctx = make_context(toy_db, multi_config(2))
        for device in hw.gpus:
            for column in toy_db.columns():
                device.cache.admit(column.key, column.nominal_bytes,
                                   pinned=True)
        strategy = DataDrivenRuntime()
        plan = Planner(toy_db).plan(bind(JOIN_SQL, toy_db, name="q"))
        join = [op for op in plan.operators if op.kind == "join"][0]
        results = [child.run(toy_db, []) for child in join.children]
        for result in results:
            result.location = "cpu"
        assert strategy.choose_processor(ctx, join, results) == "cpu"

    def test_cross_device_transfer_is_charged_both_ways(self, toy_db):
        from repro.engine.execution import execute_operator
        from repro.engine.expressions import ColumnRef, Comparison, Literal
        from repro.engine.operators import RefineSelect, ScanSelect

        env, hw, ctx = make_context(toy_db, multi_config(2))
        for device in hw.gpus:
            for column in toy_db.columns():
                device.cache.admit(column.key, column.nominal_bytes,
                                   pinned=True)
        amount = ColumnRef("sales", "amount")
        scan = ScanSelect("sales", Comparison("<", amount, Literal(60)))
        refine = RefineSelect(scan, "sales",
                              Comparison(">", amount, Literal(5)))

        def run():
            first = yield from execute_operator(ctx, scan, [], "gpu")
            assert first.location == "gpu"
            second = yield from execute_operator(
                ctx, refine, [first], "gpu2"
            )
            assert second.location == "gpu2"
            second.release_device_memory()

        env.process(run())
        env.run()
        # the intermediate crossed: device -> host -> other device
        assert hw.metrics.gpu_to_cpu_bytes > 0
        assert hw.metrics.cpu_to_gpu_bytes > 0


class TestMultiGpuWorkloads:
    @pytest.mark.parametrize("strategy",
                             ("chopping", "data_driven_chopping", "runtime"))
    def test_results_identical_with_many_gpus(self, ssb_db, strategy):
        queries = ssb.workload(ssb_db, ["Q1.1", "Q2.1", "Q3.3"])
        expected = {
            q.name: execute_functional(
                q.template_plan(), ssb_db
            ).payload.row_tuples()
            for q in queries
        }
        config = SystemConfig(gpu_count=3, gpu_memory_bytes=4 * GIB,
                              gpu_cache_bytes=int(1.5 * GIB))
        run = run_workload(ssb_db, queries, strategy, config=config,
                           users=3, repetitions=2, collect_results=True)
        for name, rows in expected.items():
            assert run.results[name].row_tuples() == rows, (strategy, name)

    def test_scale_up_improves_scarce_resources(self):
        """Sec. 6.3: more co-processors handle larger databases."""
        from repro.harness import experiments as E

        result = E.multi_gpu_scaling(
            gpu_counts=(1, 4), users=10, repetitions=1,
            strategies=("data_driven_chopping",),
        )
        series = dict(result.series("gpus", "seconds", "strategy")[
            "data_driven_chopping"
        ])
        assert series[4] < series[1] * 0.8