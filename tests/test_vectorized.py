"""Tests for the vector-at-a-time processing model (Sec. 5.5)."""

import pytest

from tests.conftest import make_context
from repro.core import STRATEGY_NAMES
from repro.core.placement import DataDrivenRuntime, RuntimeHype
from repro.engine import Planner
from repro.engine.execution import VectorizedExecutor, execute_functional
from repro.engine.execution.vectorized import Pipeline, build_pipelines
from repro.engine.operators import GroupByAggregate, HashJoin, ScanSelect
from repro.harness import run_workload
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB, MIB
from repro.sql import bind
from repro.workloads import micro, sql_workload, ssb


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region order by s desc"
)


def make_plan(db, sql=JOIN_SQL, name="q"):
    return Planner(db).plan(bind(sql, db, name=name))


class TestPipelineConstruction:
    def test_join_plan_pipelines(self, toy_db):
        plan = make_plan(toy_db)
        chains = build_pipelines(plan)
        # dim-scan build chain, fact-scan+join driver chain, then the
        # breakers (groupby, sort) as their own chains
        assert len(chains) == 4
        driver = chains[1]
        assert isinstance(driver[0], ScanSelect)
        assert isinstance(driver[-1], HashJoin)
        assert isinstance(chains[2][0], GroupByAggregate)

    def test_selection_chain_is_one_pipeline(self, ssb_db):
        plan = micro.build_parallel_selection_plan(ssb_db)
        chains = build_pipelines(plan)
        # scan + 3 refines pipeline, then the (host) materialisation
        assert len(chains) == 2
        assert len(chains[0]) == 4

    def test_chain_order_respects_dependencies(self, tpch_db):
        from repro.workloads import tpch

        plan = Planner(tpch_db).plan(
            bind(tpch.QUERIES["Q5"], tpch_db, name="Q5")
        )
        chains = build_pipelines(plan)
        seen = set()
        for chain in chains:
            for op in chain:
                for child in op.children:
                    assert child.op_id in seen or child in chain
                seen.add(op.op_id)

    def test_pipeline_required_columns_union(self, toy_db):
        plan = make_plan(toy_db)
        driver = Pipeline(build_pipelines(plan)[1])
        assert "sales.amount" in driver.required_columns()
        assert "sales.skey" in driver.required_columns()


class TestVectorizedExecution:
    def run_vectorized(self, db, plan, strategy, config=None):
        env, hw, ctx = make_context(db, config)
        if strategy.uses_data_placement:
            for device in hw.gpus:
                for column in db.columns():
                    device.cache.admit(column.key, column.nominal_bytes,
                                       pinned=True)
        executor = VectorizedExecutor(ctx, strategy)
        process = executor.submit(plan)
        env.run()
        return process.value, hw, env

    def test_results_identical_to_operator_at_a_time(self, toy_db):
        expected = execute_functional(make_plan(toy_db), toy_db)
        for strategy in (RuntimeHype(), DataDrivenRuntime()):
            result, hw, env = self.run_vectorized(
                toy_db, make_plan(toy_db), strategy
            )
            assert (result.payload.row_tuples()
                    == expected.payload.row_tuples()), strategy.name

    def test_root_result_lands_on_host_and_heap_is_clean(self, toy_db):
        result, hw, env = self.run_vectorized(
            toy_db, make_plan(toy_db), DataDrivenRuntime()
        )
        assert result.location == "cpu"
        assert hw.gpu_heap.used == 0

    def test_streaming_avoids_column_staging(self, toy_db):
        """Vectors stream: uncached inputs never occupy the heap."""
        env, hw, ctx = make_context(toy_db)  # cold cache
        executor = VectorizedExecutor(ctx, RuntimeHype(), allow_split=False)
        peaks = []
        original = hw.gpu_heap.allocate

        def tracking(nbytes, owner="?"):
            allocation = original(nbytes, owner)
            peaks.append(hw.gpu_heap.used)
            return allocation

        hw.gpu_heap.allocate = tracking
        process = executor.submit(make_plan(toy_db))
        env.run()
        column_bytes = toy_db.column("sales.amount").nominal_bytes
        # heap peaks stay far below a staged column (only breaker
        # outputs are materialised)
        assert all(peak < column_bytes for peak in peaks)

    def test_vectorized_never_slower_than_either_pure_backend(self, toy_db):
        """Cost-based pipeline placement with vector splitting picks
        the better side of each pipeline and overlaps transfers, so it
        beats (or matches) both pure operator-model backends."""
        # one repetition: the operator model must not benefit from
        # warming the cache across repetitions (streaming never caches)
        queries = sql_workload(toy_db, {"q": JOIN_SQL})
        pure_cpu = run_workload(toy_db, queries, "cpu_only",
                                warm_cache=False, repetitions=1)
        pure_gpu = run_workload(toy_db, queries, "gpu_only",
                                warm_cache=False, repetitions=1)
        vectorized = run_workload(toy_db, queries, "runtime",
                                  warm_cache=False, repetitions=1,
                                  processing_model="vectorized")
        assert vectorized.seconds <= min(
            pure_cpu.seconds, pure_gpu.seconds
        ) * 1.1

    def test_breaker_heap_contention_persists(self):
        """Sec. 5.5: heap contention is reduced to pipeline breakers,
        but a device whose heap cannot hold the breaker outputs still
        aborts under concurrency."""
        from repro.harness import experiments as E

        database = E.ssb_database(10)
        # a cache that holds the hot set next to an (artificially)
        # tiny operator heap
        config = SystemConfig(
            gpu_memory_bytes=int(1.55 * GIB),
            gpu_cache_bytes=int(1.5 * GIB),
        )
        queries = ssb.workload(database, ["Q3.1"])
        run = run_workload(database, queries, "data_driven_chopping",
                           config=config, users=4, repetitions=4,
                           processing_model="vectorized")
        assert run.metrics.aborts > 0  # the breakers still contend

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_all_strategies_supported(self, toy_db, strategy):
        queries = sql_workload(toy_db, {"q": JOIN_SQL})
        expected = execute_functional(
            queries[0].template_plan(), toy_db
        ).payload.row_tuples()
        run = run_workload(toy_db, queries, strategy, users=2,
                           repetitions=2, processing_model="vectorized",
                           collect_results=True)
        assert run.results["q"].row_tuples() == expected, strategy

    def test_invalid_processing_model_rejected(self, toy_db):
        queries = sql_workload(toy_db, {"q": JOIN_SQL})
        with pytest.raises(ValueError):
            run_workload(toy_db, queries, "cpu_only",
                         processing_model="quantum")

    def test_split_uses_both_processors(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        for column in toy_db.columns():
            hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
        executor = VectorizedExecutor(ctx, RuntimeHype(), allow_split=True)
        process = executor.submit(make_plan(toy_db))
        env.run()
        busy = hw.metrics.busy_seconds
        assert busy.get("gpu", 0) > 0
        assert busy.get("cpu", 0) > 0  # the host took a vector share
