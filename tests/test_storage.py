"""Unit tests for the storage layer."""

import numpy as np
import pytest

from repro.storage import AccessStatistics, Column, ColumnType, Database, Table


class TestColumnType:
    def test_itemsizes(self):
        assert ColumnType.INT32.itemsize == 4
        assert ColumnType.INT64.itemsize == 8
        assert ColumnType.FLOAT32.itemsize == 4
        assert ColumnType.FLOAT64.itemsize == 8
        assert ColumnType.DATE.itemsize == 4
        assert ColumnType.STRING.itemsize == 4  # dictionary codes

    def test_numeric_flag(self):
        assert ColumnType.INT32.is_numeric
        assert ColumnType.FLOAT64.is_numeric
        assert not ColumnType.STRING.is_numeric
        assert not ColumnType.DATE.is_numeric


class TestColumn:
    def test_nominal_vs_actual_sizing(self):
        column = Column("t", "c", ColumnType.INT32,
                        np.arange(100, dtype=np.int32), nominal_rows=1_000_000)
        assert column.actual_rows == 100
        assert column.nominal_rows == 1_000_000
        assert column.nominal_bytes == 4_000_000
        assert column.actual_bytes == 400
        assert column.key == "t.c"

    def test_nominal_defaults_to_actual(self):
        column = Column("t", "c", ColumnType.INT32, np.arange(7, dtype=np.int32))
        assert column.nominal_rows == 7

    def test_dtype_coercion(self):
        column = Column("t", "c", ColumnType.INT32, np.arange(5, dtype=np.int64))
        assert column.values.dtype == np.int32

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            Column("t", "c", ColumnType.INT32, np.zeros((2, 2), dtype=np.int32))

    def test_string_column_requires_dictionary(self):
        with pytest.raises(ValueError):
            Column("t", "c", ColumnType.STRING, np.zeros(3, dtype=np.int32))

    def test_dictionary_only_for_strings(self):
        with pytest.raises(ValueError):
            Column("t", "c", ColumnType.INT32, np.zeros(3, dtype=np.int32),
                   dictionary=["a"])

    def test_string_encoding_order_preserving(self):
        column = Column.from_strings("t", "c", ["pear", "apple", "pear", "fig"])
        # sorted dictionary: apple < fig < pear
        assert column.dictionary == ["apple", "fig", "pear"]
        assert list(column.values) == [2, 0, 2, 1]
        # code order == lexicographic order
        assert column.encode("apple") < column.encode("fig") < column.encode("pear")

    def test_encode_unknown_string(self):
        column = Column.from_strings("t", "c", ["b", "d"])
        assert column.encode("a") == -1
        assert column.encode("c") == -1

    def test_encode_bounds(self):
        column = Column.from_strings("t", "c", ["b", "d", "f"])
        # strings >= 'c' start at code of 'd' (=1)
        assert column.encode_lower_bound("c") == 1
        assert column.encode_lower_bound("b") == 0
        # strings <= 'c' end at code of 'b' (=0)
        assert column.encode_upper_bound("c") == 0
        assert column.encode_upper_bound("a") == -1
        assert column.encode_upper_bound("z") == 2

    def test_decode_scalar_and_array(self):
        column = Column.from_strings("t", "c", ["x", "y", "x"])
        assert column.decode(0) == "x"
        assert column.decode(np.array([0, 1])) == ["x", "y"]

    def test_decode_on_numeric_column_rejected(self):
        column = Column("t", "c", ColumnType.INT32, np.arange(3, dtype=np.int32))
        with pytest.raises(TypeError):
            column.decode(0)

    def test_gather(self):
        column = Column("t", "c", ColumnType.INT32,
                        np.array([10, 20, 30, 40], dtype=np.int32))
        assert list(column.gather(np.array([3, 0]))) == [40, 10]


class TestTable:
    def test_add_and_lookup(self):
        table = Table("t", nominal_rows=1000)
        table.add_column("a", ColumnType.INT32, np.arange(10, dtype=np.int32))
        table.add_string_column("b", ["x"] * 10)
        assert table.actual_rows == 10
        assert table.nominal_rows == 1000
        assert table.column("a").nominal_rows == 1000
        assert "a" in table and "missing" not in table
        assert table.column_names == ["a", "b"]
        assert table.nominal_bytes == 1000 * 4 * 2

    def test_duplicate_column_rejected(self):
        table = Table("t")
        table.add_column("a", ColumnType.INT32, np.arange(3, dtype=np.int32))
        with pytest.raises(ValueError):
            table.add_column("a", ColumnType.INT32, np.arange(3, dtype=np.int32))

    def test_mismatched_lengths_rejected(self):
        table = Table("t")
        table.add_column("a", ColumnType.INT32, np.arange(3, dtype=np.int32))
        with pytest.raises(ValueError):
            table.add_column("b", ColumnType.INT32, np.arange(4, dtype=np.int32))

    def test_missing_column_raises(self):
        table = Table("t")
        with pytest.raises(KeyError):
            table.column("nope")


class TestDatabase:
    def test_catalog(self):
        db = Database("d")
        table = db.create_table("t", nominal_rows=10)
        table.add_column("a", ColumnType.INT32, np.arange(5, dtype=np.int32))
        assert "t" in db
        assert db.table("t") is table
        assert db.column("t.a").name == "a"
        assert len(db.columns()) == 1
        assert db.nominal_bytes == 40

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t")
        with pytest.raises(ValueError):
            db.create_table("t")

    def test_missing_table_raises(self):
        db = Database()
        with pytest.raises(KeyError):
            db.table("nope")
        with pytest.raises(KeyError):
            db.column("nope.c")


class TestAccessStatistics:
    def test_counting(self):
        stats = AccessStatistics()
        stats.record_access("a")
        stats.record_access("a")
        stats.record_access("b")
        assert stats.access_count("a") == 2
        assert stats.access_count("b") == 1
        assert stats.access_count("never") == 0
        assert len(stats) == 2

    def test_frequency_ordering(self):
        stats = AccessStatistics()
        for _ in range(3):
            stats.record_access("hot")
        stats.record_access("cold")
        stats.record_access("warm")
        stats.record_access("warm")
        assert stats.by_frequency() == ["hot", "warm", "cold"]

    def test_frequency_ties_break_on_recency(self):
        stats = AccessStatistics()
        stats.record_access("first")
        stats.record_access("second")
        # equal counts: the more recently accessed ranks first
        assert stats.by_frequency() == ["second", "first"]

    def test_recency_ordering(self):
        stats = AccessStatistics()
        stats.record_access("a", now=1.0)
        stats.record_access("b", now=5.0)
        stats.record_access("c", now=3.0)
        assert stats.by_recency() == ["b", "c", "a"]

    def test_reset(self):
        stats = AccessStatistics()
        stats.record_access("a")
        stats.reset()
        assert len(stats) == 0
        assert stats.by_frequency() == []
        assert stats.last_access("a") == float("-inf")
