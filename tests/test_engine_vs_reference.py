"""Integration: the physical engine must agree with the naive reference
evaluator on every workload query (SSBM Q1.1-Q4.3, TPC-H Q2-Q7, and the
micro-benchmark selections)."""

import math

import pytest

from repro.engine import Planner, execute_reference, plan_cache
from repro.engine.execution import execute_functional
from repro.sql import bind
from repro.workloads import micro, ssb, tpch


def rows_close(engine_rows, reference_rows, rel=1e-9):
    """Compare row sets with float tolerance."""
    if len(engine_rows) != len(reference_rows):
        return False
    for got, want in zip(sorted(engine_rows), sorted(reference_rows)):
        if len(got) != len(want):
            return False
        for a, b in zip(got, want):
            if isinstance(a, float) or isinstance(b, float):
                if not math.isclose(float(a), float(b), rel_tol=rel,
                                    abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def run_both(database, sql, name):
    spec = bind(sql, database, name=name)
    plan = Planner(database).plan(spec)
    engine_result = execute_functional(plan, database)
    engine_rows = engine_result.payload.row_tuples()
    reference_rows = execute_reference(spec, database)
    return spec, engine_rows, reference_rows


@pytest.mark.parametrize("name", list(ssb.QUERIES))
def test_ssb_query_matches_reference(ssb_db, name):
    spec, engine_rows, reference_rows = run_both(
        ssb_db, ssb.QUERIES[name], name
    )
    if spec.order_by:
        # engine ordering must match the (stable-sorted) reference on
        # the order-by prefix
        names = [r.name for r in spec.group_by] + [
            a.alias for a in spec.aggregates
        ]
        key_indices = [names.index(n) for n, _ in spec.order_by]
        engine_keys = [tuple(r[i] for i in key_indices) for r in engine_rows]
        ref_keys = [tuple(r[i] for i in key_indices) for r in reference_rows]
        assert engine_keys == ref_keys, name
    assert rows_close(engine_rows, reference_rows), name


@pytest.mark.parametrize("name", list(tpch.QUERIES))
def test_tpch_query_matches_reference(tpch_db, name):
    spec, engine_rows, reference_rows = run_both(
        tpch_db, tpch.QUERIES[name], name
    )
    if spec.limit is None:
        assert rows_close(engine_rows, reference_rows), name
    else:
        # With LIMIT after ORDER BY ties may resolve differently; the
        # sorted key prefix must agree.
        assert len(engine_rows) == len(reference_rows)
        names = [r.name for r in spec.group_by] + [
            a.alias for a in spec.aggregates
        ]
        key_indices = [names.index(n) for n, _ in spec.order_by]
        for got, want in zip(engine_rows, reference_rows):
            assert tuple(got[i] for i in key_indices) == tuple(
                want[i] for i in key_indices
            )


@pytest.mark.parametrize("name", list(micro.SERIAL_SELECTION_QUERIES))
def test_micro_serial_selection_matches_reference(ssb_db, name):
    spec, engine_rows, reference_rows = run_both(
        ssb_db, micro.SERIAL_SELECTION_QUERIES[name], name
    )
    assert rows_close(engine_rows, reference_rows), name


def test_micro_parallel_chain_equals_fused_selection(ssb_db):
    """The four-operator chain of Appendix B.2 must select exactly the
    rows of the fused predicate."""
    import numpy as np

    from repro.engine.frame import Frame

    plan = micro.build_parallel_selection_plan(ssb_db)
    result = execute_functional(plan, ssb_db)
    predicate = micro.parallel_selection_reference_predicate()
    mask = predicate.evaluate(Frame(ssb_db))
    assert result.actual_rows == int(np.count_nonzero(mask))


def test_cross_plan_cache_serves_fresh_templates_correctly(ssb_db):
    """A rebuilt workload (new template plans) is served from the
    fingerprint cache and must still match the reference evaluator."""
    plan_cache.invalidate(ssb_db)
    plan_cache.reset_stats()
    for query in ssb.workload(ssb_db):
        execute_functional(query.instantiate(), ssb_db)
    warm_stats = dict(plan_cache.stats)
    assert warm_stats["stores"] > 0

    # Fresh WorkloadQuery objects: nothing memoised on their templates,
    # so every fingerprintable subplan resolves via the cross-plan cache.
    for query in ssb.workload(ssb_db):
        engine_rows = execute_functional(
            query.instantiate(), ssb_db
        ).payload.row_tuples()
        reference_rows = execute_reference(query.spec, ssb_db)
        assert rows_close(engine_rows, reference_rows), query.name
    assert plan_cache.stats["hits"] > warm_stats["hits"]
    assert plan_cache.stats["stores"] == warm_stats["stores"]
    plan_cache.invalidate(ssb_db)


def test_clone_memo_poisoning_does_not_leak_across_runs(ssb_db):
    """Rebinding ``_cached_result`` on a clone's operators must affect
    neither the template, the cross-plan cache, nor later clones."""
    plan_cache.invalidate(ssb_db)
    query = ssb.workload(ssb_db)[0]
    execute_functional(query.template_plan(), ssb_db)

    poisoned = query.instantiate()
    for op in poisoned.root.walk():
        op._cached_result = (None, -1, -1, -1)

    fresh = query.instantiate()
    engine_rows = execute_functional(fresh, ssb_db).payload.row_tuples()
    reference_rows = execute_reference(query.spec, ssb_db)
    assert rows_close(engine_rows, reference_rows)
    for op in query.template_plan().root.walk():
        assert op._cached_result != (None, -1, -1, -1)
    plan_cache.invalidate(ssb_db)


def test_plan_cache_invalidate_forces_recomputation(ssb_db):
    """After invalidation a fresh template stores anew (no stale hits)."""
    plan_cache.invalidate(ssb_db)
    plan_cache.reset_stats()
    query = ssb.workload(ssb_db)[0]
    execute_functional(query.instantiate(), ssb_db)
    assert plan_cache.cache_size(ssb_db) > 0
    plan_cache.invalidate(ssb_db)
    assert plan_cache.cache_size(ssb_db) == 0
    stores_before = plan_cache.stats["stores"]
    rebuilt = ssb.workload(ssb_db)[0]
    execute_functional(rebuilt.instantiate(), ssb_db)
    assert plan_cache.stats["stores"] > stores_before
    plan_cache.invalidate(ssb_db)


def test_ssb_q11_revenue_value(ssb_db):
    """Spot check one aggregate end to end against a direct computation."""
    import numpy as np

    spec = bind(ssb.QUERIES["Q1.1"], ssb_db, name="Q1.1")
    plan = Planner(ssb_db).plan(spec)
    result = execute_functional(plan, ssb_db)

    lo = ssb_db.table("lineorder")
    date = ssb_db.table("date")
    discount = lo.column("lo_discount").values.astype(np.int64)
    quantity = lo.column("lo_quantity").values
    price = lo.column("lo_extendedprice").values.astype(np.int64)
    orderdate = lo.column("lo_orderdate").values
    year_of = dict(zip(date.column("d_datekey").values,
                       date.column("d_year").values))
    years = np.array([year_of[d] for d in orderdate])
    mask = (
        (years == 1993)
        & (discount >= 1) & (discount <= 3)
        & (quantity < 25)
    )
    expected = int((price[mask] * discount[mask]).sum())
    assert int(result.payload.column("revenue")[0]) == expected
