"""Integration: the physical engine must agree with the naive reference
evaluator on every workload query (SSBM Q1.1-Q4.3, TPC-H Q2-Q7, and the
micro-benchmark selections)."""

import math

import pytest

from repro.engine import Planner, execute_reference
from repro.engine.execution import execute_functional
from repro.sql import bind
from repro.workloads import micro, ssb, tpch


def rows_close(engine_rows, reference_rows, rel=1e-9):
    """Compare row sets with float tolerance."""
    if len(engine_rows) != len(reference_rows):
        return False
    for got, want in zip(sorted(engine_rows), sorted(reference_rows)):
        if len(got) != len(want):
            return False
        for a, b in zip(got, want):
            if isinstance(a, float) or isinstance(b, float):
                if not math.isclose(float(a), float(b), rel_tol=rel,
                                    abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def run_both(database, sql, name):
    spec = bind(sql, database, name=name)
    plan = Planner(database).plan(spec)
    engine_result = execute_functional(plan, database)
    engine_rows = engine_result.payload.row_tuples()
    reference_rows = execute_reference(spec, database)
    return spec, engine_rows, reference_rows


@pytest.mark.parametrize("name", list(ssb.QUERIES))
def test_ssb_query_matches_reference(ssb_db, name):
    spec, engine_rows, reference_rows = run_both(
        ssb_db, ssb.QUERIES[name], name
    )
    if spec.order_by:
        # engine ordering must match the (stable-sorted) reference on
        # the order-by prefix
        names = [r.name for r in spec.group_by] + [
            a.alias for a in spec.aggregates
        ]
        key_indices = [names.index(n) for n, _ in spec.order_by]
        engine_keys = [tuple(r[i] for i in key_indices) for r in engine_rows]
        ref_keys = [tuple(r[i] for i in key_indices) for r in reference_rows]
        assert engine_keys == ref_keys, name
    assert rows_close(engine_rows, reference_rows), name


@pytest.mark.parametrize("name", list(tpch.QUERIES))
def test_tpch_query_matches_reference(tpch_db, name):
    spec, engine_rows, reference_rows = run_both(
        tpch_db, tpch.QUERIES[name], name
    )
    if spec.limit is None:
        assert rows_close(engine_rows, reference_rows), name
    else:
        # With LIMIT after ORDER BY ties may resolve differently; the
        # sorted key prefix must agree.
        assert len(engine_rows) == len(reference_rows)
        names = [r.name for r in spec.group_by] + [
            a.alias for a in spec.aggregates
        ]
        key_indices = [names.index(n) for n, _ in spec.order_by]
        for got, want in zip(engine_rows, reference_rows):
            assert tuple(got[i] for i in key_indices) == tuple(
                want[i] for i in key_indices
            )


@pytest.mark.parametrize("name", list(micro.SERIAL_SELECTION_QUERIES))
def test_micro_serial_selection_matches_reference(ssb_db, name):
    spec, engine_rows, reference_rows = run_both(
        ssb_db, micro.SERIAL_SELECTION_QUERIES[name], name
    )
    assert rows_close(engine_rows, reference_rows), name


def test_micro_parallel_chain_equals_fused_selection(ssb_db):
    """The four-operator chain of Appendix B.2 must select exactly the
    rows of the fused predicate."""
    import numpy as np

    from repro.engine.frame import Frame

    plan = micro.build_parallel_selection_plan(ssb_db)
    result = execute_functional(plan, ssb_db)
    predicate = micro.parallel_selection_reference_predicate()
    mask = predicate.evaluate(Frame(ssb_db))
    assert result.actual_rows == int(np.count_nonzero(mask))


def test_ssb_q11_revenue_value(ssb_db):
    """Spot check one aggregate end to end against a direct computation."""
    import numpy as np

    spec = bind(ssb.QUERIES["Q1.1"], ssb_db, name="Q1.1")
    plan = Planner(ssb_db).plan(spec)
    result = execute_functional(plan, ssb_db)

    lo = ssb_db.table("lineorder")
    date = ssb_db.table("date")
    discount = lo.column("lo_discount").values.astype(np.int64)
    quantity = lo.column("lo_quantity").values
    price = lo.column("lo_extendedprice").values.astype(np.int64)
    orderdate = lo.column("lo_orderdate").values
    year_of = dict(zip(date.column("d_datekey").values,
                       date.column("d_year").values))
    years = np.array([year_of[d] for d in orderdate])
    mask = (
        (years == 1993)
        & (discount >= 1) & (discount <= 3)
        & (quantity < 25)
    )
    expected = int((price[mask] * discount[mask]).sum())
    assert int(result.payload.column("revenue")[0]) == expected
