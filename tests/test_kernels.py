"""Kernel-acceleration layer: equivalence, caching, and invalidation.

Every kernel (cached join indexes, zone-map pruned scans, lazy
selection vectors) is a pure acceleration — these tests pin the
byte-identity against the seed execution paths on the SSB and TPC-H
grids, and the invalidation contract of the cache registry.
"""

import numpy as np
import pytest

from repro.engine import Planner, caches, execute_reference, kernels, plan_cache
from repro.engine.execution import execute_functional
from repro.engine.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
)
from repro.engine.frame import Frame
from repro.engine.intermediates import SelectionVector, TidSet
from repro.engine.operators import (
    HashJoin,
    Materialize,
    PhysicalPlan,
    RefineSelect,
    ScanSelect,
    TidIntersect,
)
from repro.sql import bind
from repro.storage import ColumnType, Database, build_zone_map
from repro.storage.compression import compress_database
from repro.workloads import micro, ssb, tpch


@pytest.fixture(autouse=True)
def _kernel_state():
    """Each test starts from enabled kernels, default block size, and
    empty caches; globals are restored afterwards."""
    kernels.enable(True)
    kernels.set_block_rows(None)
    kernels.invalidate()
    plan_cache.invalidate()
    kernels.reset_stats()
    yield
    kernels.enable(True)
    kernels.set_block_rows(None)
    kernels.invalidate()
    plan_cache.invalidate()


def run_query(database, sql, name):
    """Fresh plan + functional execution (no cross-plan memoisation)."""
    plan_cache.invalidate()
    spec = bind(sql, database, name=name)
    plan = Planner(database).plan(spec)
    return execute_functional(plan, database).payload.row_tuples()


# ---------------------------------------------------------------------------
# SelectionVector
# ---------------------------------------------------------------------------

class TestSelectionVector:
    def test_mask_materialises_lazily(self):
        mask = np.array([True, False, True, True, False])
        sel = SelectionVector(mask)
        assert sel._tids is None
        assert len(sel) == 3
        assert sel.tids.tolist() == [0, 2, 3]
        assert sel.tids.dtype == np.int64
        assert not sel.is_all

    def test_full_table_selection(self):
        sel = SelectionVector(n=4)
        assert sel.mask is None
        assert sel.is_all
        assert len(sel) == 4
        assert sel.tids.tolist() == [0, 1, 2, 3]

    def test_all_true_mask_is_all(self):
        sel = SelectionVector(np.ones(6, dtype=bool))
        assert sel.is_all

    def test_needs_mask_or_count(self):
        with pytest.raises(ValueError):
            SelectionVector()

    def test_tidset_positions_and_gather(self, toy_db):
        sel = SelectionVector(np.arange(500) % 3 == 0)
        tids = TidSet({"sales": sel})
        assert np.array_equal(tids.positions("sales"), sel.tids)
        column = toy_db.column("sales.amount")
        assert np.array_equal(
            tids.gather("sales", column), column.values[sel.tids]
        )
        # Full-table selections gather nothing: the base array itself
        # comes back.
        full = TidSet({"sales": SelectionVector(n=500)})
        assert tids.selection("sales") is sel
        assert full.gather("sales", column) is column.values


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------

class TestZoneMaps:
    def test_build_matches_blockwise_loop(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-50, 50, 1000).astype(np.int32)
        zone_map = build_zone_map(values, 64)
        assert zone_map.n_blocks == (1000 + 63) // 64
        for block in range(zone_map.n_blocks):
            start, stop = zone_map.block_bounds(block)
            assert zone_map.mins[block] == values[start:stop].min()
            assert zone_map.maxs[block] == values[start:stop].max()

    def test_empty_column(self):
        zone_map = build_zone_map(np.empty(0, dtype=np.int32), 64)
        assert zone_map.n_blocks == 0

    @pytest.mark.parametrize("predicate", [
        Comparison("<", ColumnRef("t", "sorted"), Literal(2500)),
        Comparison(">=", ColumnRef("t", "sorted"), Literal(9000)),
        Comparison("=", ColumnRef("t", "sorted"), Literal(123)),
        Comparison("<>", ColumnRef("t", "sorted"), Literal(123)),
        Comparison(">", Literal(2500), ColumnRef("t", "sorted")),
        Between(ColumnRef("t", "sorted"), Literal(100), Literal(900)),
        InList(ColumnRef("t", "sorted"), [5, 700, 99999]),
        Not(Comparison("<", ColumnRef("t", "sorted"), Literal(2500))),
        And([
            Comparison(">=", ColumnRef("t", "sorted"), Literal(1000)),
            Comparison("<", ColumnRef("t", "random"), Literal(40)),
        ]),
        Or([
            Comparison("<", ColumnRef("t", "sorted"), Literal(300)),
            Comparison(">", ColumnRef("t", "sorted"), Literal(9700)),
        ]),
        Comparison("<=", ColumnRef("t", "name"), Literal("m")),
        Comparison("=", ColumnRef("t", "name"), Literal("s0042")),
        InList(ColumnRef("t", "name"), ["s0001", "s0002", "zzz"]),
    ])
    def test_pruned_scan_mask_identical(self, predicate):
        db = Database("zones")
        table = db.create_table("t", nominal_rows=10_000)
        table.add_column("sorted", ColumnType.INT32, np.arange(10_000))
        rng = np.random.default_rng(11)
        table.add_column("random", ColumnType.INT32,
                         rng.integers(0, 100, 10_000))
        table.add_string_column(
            "name", ["s{:04d}".format(i % 300) for i in range(10_000)]
        )
        kernels.set_block_rows(128)
        cache = kernels.cache_for(db)
        expected = np.asarray(predicate.evaluate(Frame(db)), dtype=bool)
        mask = kernels.scan_mask(db, "t", predicate, cache)
        if mask is not None:
            assert np.array_equal(mask, expected)

    def test_clustered_scan_skips_blocks(self):
        db = Database("zones")
        table = db.create_table("t", nominal_rows=10_000)
        table.add_column("sorted", ColumnType.INT32, np.arange(10_000))
        kernels.set_block_rows(128)
        cache = kernels.cache_for(db)
        predicate = Comparison("<", ColumnRef("t", "sorted"), Literal(1000))
        mask = kernels.scan_mask(db, "t", predicate, cache)
        assert mask is not None
        assert kernels.stats["scans_pruned"] == 1
        assert kernels.stats["blocks_skipped"] > 0
        assert kernels.stats["blocks_short_circuited"] > 0

    def test_unclustered_predicate_declines(self):
        db = Database("zones")
        table = db.create_table("t", nominal_rows=10_000)
        rng = np.random.default_rng(3)
        table.add_column("random", ColumnType.INT32,
                         rng.integers(0, 100, 10_000))
        kernels.set_block_rows(128)
        cache = kernels.cache_for(db)
        predicate = Comparison("<", ColumnRef("t", "random"), Literal(50))
        # Every block straddles the bound: pruning must decline rather
        # than pay per-block evaluation.
        assert kernels.scan_mask(db, "t", predicate, cache) is None


# ---------------------------------------------------------------------------
# Cached join indexes
# ---------------------------------------------------------------------------

def _join_plan(database):
    scan = ScanSelect("sales")
    dim = ScanSelect(
        "store", Comparison("<", ColumnRef("store", "size"), Literal(120))
    )
    join = HashJoin(scan, dim, ColumnRef("sales", "skey"),
                    ColumnRef("store", "id"))
    root = Materialize(join, [
        ("amount", ColumnRef("sales", "amount")),
        ("size", ColumnRef("store", "size")),
        ("region", ColumnRef("store", "region")),
    ])
    return PhysicalPlan(root, name="join")


class TestCachedJoinIndexes:
    def _rows(self, database):
        plan_cache.invalidate()
        return execute_functional(_join_plan(database),
                                  database).payload.row_tuples()

    def test_filtered_dense_build_matches_seed(self, toy_db):
        kernels.enable(False)
        expected = self._rows(toy_db)
        kernels.enable(True)
        got = self._rows(toy_db)
        assert got == expected
        # store.id is a dense ascending key: the join must have taken
        # the positional path.
        assert kernels.stats["dense_joins"] >= 1

    def test_repeated_join_hits_cache(self, toy_db):
        self._rows(toy_db)
        builds = kernels.stats["join_index_builds"]
        self._rows(toy_db)
        assert kernels.stats["join_index_builds"] == builds
        assert kernels.stats["join_index_hits"] >= 1

    def test_non_dense_build_matches_seed(self):
        db = Database("nd")
        rng = np.random.default_rng(9)
        fact = db.create_table("f", nominal_rows=4000)
        fact.add_column("k", ColumnType.INT32, rng.integers(0, 60, 4000))
        fact.add_column("v", ColumnType.INT32, rng.integers(0, 9, 4000))
        dim = db.create_table("d", nominal_rows=200)
        # Shuffled, duplicated keys: exercises the sorted-index path
        # with 1:N matches and mask filtering.
        dim.add_column("k", ColumnType.INT32, rng.integers(0, 60, 200))
        dim.add_column("w", ColumnType.INT32, rng.integers(0, 5, 200))

        def rows():
            plan_cache.invalidate()
            scan = ScanSelect("f")
            build = ScanSelect(
                "d", Comparison("<", ColumnRef("d", "w"), Literal(3))
            )
            join = HashJoin(scan, build, ColumnRef("f", "k"),
                            ColumnRef("d", "k"))
            root = Materialize(join, [
                ("v", ColumnRef("f", "v")),
                ("w", ColumnRef("d", "w")),
            ])
            result = execute_functional(PhysicalPlan(root, name="nd"), db)
            return result.payload.row_tuples()

        kernels.enable(False)
        expected = rows()
        kernels.enable(True)
        assert rows() == expected
        assert kernels.stats["dense_joins"] == 0
        assert kernels.stats["join_index_builds"] >= 1

    def test_ssb_queries_identical_with_and_without_kernels(self, ssb_db):
        for name, sql in ssb.QUERIES.items():
            kernels.enable(False)
            expected = run_query(ssb_db, sql, name)
            kernels.enable(True)
            kernels.set_block_rows(96)
            assert run_query(ssb_db, sql, name) == expected, name

    def test_tpch_queries_identical_with_and_without_kernels(self, tpch_db):
        for name, sql in tpch.QUERIES.items():
            kernels.enable(False)
            expected = run_query(tpch_db, sql, name)
            kernels.enable(True)
            kernels.set_block_rows(96)
            assert run_query(tpch_db, sql, name) == expected, name

    def test_ssb_agrees_with_reference_under_kernels(self, ssb_db):
        kernels.set_block_rows(96)
        name = "Q2.1"
        spec = bind(ssb.QUERIES[name], ssb_db, name=name)
        plan = Planner(ssb_db).plan(spec)
        engine_rows = execute_functional(plan, ssb_db).payload.row_tuples()
        reference_rows = execute_reference(spec, ssb_db)
        assert sorted(engine_rows) == sorted(reference_rows)


# ---------------------------------------------------------------------------
# Lazy selection vectors through operator chains
# ---------------------------------------------------------------------------

class TestLazySelectionChains:
    def test_refine_chain_matches_seed(self, ssb_db):
        def rows():
            plan_cache.invalidate()
            plan = micro.build_parallel_selection_plan(ssb_db)
            return execute_functional(plan, ssb_db).payload.row_tuples()

        kernels.enable(False)
        expected = rows()
        kernels.enable(True)
        got = rows()
        assert got == expected
        assert kernels.stats["masked_refines"] >= 3

    def test_tid_intersect_combines_masks(self, toy_db):
        amount = ColumnRef("sales", "amount")
        price = ColumnRef("sales", "price")

        def rows():
            # Fresh plan per run: per-template memos must not leak the
            # other mode's payload into the comparison.
            plan_cache.invalidate()
            left = ScanSelect("sales", Comparison(">", amount, Literal(30)))
            right = ScanSelect("sales", Comparison("<", price, Literal(25)))
            intersect = TidIntersect(left, right, "sales")
            root = Materialize(intersect,
                               [("amount", amount), ("price", price)])
            plan = PhysicalPlan(root, name="and")
            return execute_functional(plan, toy_db).payload.row_tuples()

        kernels.enable(False)
        expected = rows()
        kernels.enable(True)
        got = rows()
        assert got == expected
        assert kernels.stats["masked_intersects"] >= 1

    def test_scan_without_predicate_is_lazy(self, toy_db):
        result = ScanSelect("sales").run(toy_db, [])
        selection = result.payload.selection("sales")
        assert selection is not None and selection.is_all
        assert result.actual_rows == 500
        assert result.row_width_bytes == 0


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_registry_contains_both_caches(self):
        assert "plan" in caches.registered()
        assert "kernels" in caches.registered()

    def test_compress_drops_kernel_cache(self, toy_db):
        self_rows = execute_functional(_join_plan(toy_db), toy_db)
        assert self_rows is not None
        assert kernels.cache_size(toy_db) > 0
        compress_database(toy_db)
        assert kernels.cache_size(toy_db) == 0
        assert plan_cache.cache_size(toy_db) == 0

    def test_clear_database_caches_drops_everything(self, toy_db):
        execute_functional(_join_plan(toy_db), toy_db)
        assert kernels.cache_size() > 0
        from repro.harness.experiments import clear_database_caches

        clear_database_caches()
        assert kernels.cache_size() == 0
        assert plan_cache.cache_size() == 0

    def test_results_stay_correct_after_compression(self, toy_db):
        before = execute_functional(_join_plan(toy_db),
                                    toy_db).payload.row_tuples()
        compress_database(toy_db)
        plan_cache.invalidate()
        after = execute_functional(_join_plan(toy_db),
                                   toy_db).payload.row_tuples()
        assert before == after

    def test_disable_restores_seed_payloads(self, toy_db):
        kernels.enable(False)
        result = ScanSelect("sales").run(toy_db, [])
        assert isinstance(result.payload.positions("sales"), np.ndarray)
        assert result.payload.selection("sales") is None


# ---------------------------------------------------------------------------
# Satellite kernels: word-level bit packing, dictionary fast paths
# ---------------------------------------------------------------------------

class TestWordLevelBitPack:
    @pytest.mark.parametrize("width_span", [
        1, 2, 3, 5, 7, 8, 13, 16, 31, 33, 40, 63,
    ])
    def test_round_trip_every_width(self, width_span):
        from repro.storage.compression import BitPackCodec

        codec = BitPackCodec()
        rng = np.random.default_rng(width_span)
        values = rng.integers(0, 2 ** width_span, 999,
                              dtype=np.int64) - 12345
        # Force the width: include the span endpoints.
        values[0] = -12345
        values[1] = 2 ** width_span - 1 - 12345
        payload = codec.encode(values)
        assert payload[0].dtype == np.uint64
        decoded = codec.decode(payload, np.int64, len(values))
        assert np.array_equal(decoded, values)

    def test_no_bit_matrix_blowup(self):
        from repro.storage.compression import BitPackCodec

        codec = BitPackCodec()
        values = np.arange(100_000, dtype=np.int64)
        words, base, width = codec.encode(values)
        assert width == 17
        # Word-level layout: ~width/64 words per value (plus spill).
        assert len(words) <= 100_000 * width // 64 + 2

    def test_delta_codec_still_exact(self):
        from repro.storage.compression import DeltaBitPackCodec

        codec = DeltaBitPackCodec()
        rng = np.random.default_rng(2)
        values = np.cumsum(rng.integers(0, 7, 5000)).astype(np.int32)
        decoded = codec.decode(codec.encode(values), np.int32, len(values))
        assert np.array_equal(decoded, values)


class TestDictionaryFastPaths:
    def test_encode_uses_cached_map(self, toy_db):
        column = toy_db.column("store.region")
        assert column.encode("north") == column.dictionary.index("north")
        assert column.encode("nowhere") == -1
        assert column._code_of is not None

    def test_bounds_cached_and_correct(self, toy_db):
        import bisect

        column = toy_db.column("store.region")
        for probe in ("east", "m", "aaa", "zzz"):
            assert column.encode_lower_bound(probe) == bisect.bisect_left(
                column.dictionary, probe
            )
            assert column.encode_upper_bound(probe) == (
                bisect.bisect_right(column.dictionary, probe) - 1
            )
        # Second lookup comes from the memo.
        assert ("m", False) in column._bound_cache

    def test_decode_vectorised_keeps_list_of_str(self, toy_db):
        column = toy_db.column("store.region")
        decoded = column.decode(column.values[:5])
        assert isinstance(decoded, list)
        assert all(isinstance(s, str) for s in decoded)
        assert decoded == [column.dictionary[int(c)]
                           for c in column.values[:5]]
        assert column.decode([]) == []
        assert column.decode(int(column.values[0])) == decoded[0]

    def test_result_frame_decoded_matches_loop(self, toy_db):
        from repro.engine.intermediates import ResultFrame

        frame = ResultFrame(
            {"region": toy_db.column("store.region").values.copy()},
            {"region": toy_db.column("store.region").dictionary},
        )
        expected = [frame.dictionaries["region"][int(c)]
                    for c in frame.columns["region"]]
        assert frame.decoded("region") == expected
        assert all(isinstance(s, str) for s in frame.decoded("region"))
