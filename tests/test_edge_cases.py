"""Edge-case tests across modules: empty inputs, degenerate plans,
failure paths, and interactions not covered elsewhere."""

import numpy as np
import pytest

from tests.conftest import make_context
from repro.engine import Planner, execute_reference
from repro.engine.execution import execute_functional
from repro.engine.expressions import (
    Aggregate,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.engine.operators import (
    Distinct,
    FrameFilter,
    GroupByAggregate,
    Materialize,
    ScanSelect,
)
from repro.sql import bind
from repro.storage import ColumnType, Database


@pytest.fixture()
def empty_db():
    db = Database("empty")
    table = db.create_table("t", nominal_rows=0)
    table.add_column("a", ColumnType.INT32, np.empty(0, dtype=np.int32))
    table.add_column("b", ColumnType.INT32, np.empty(0, dtype=np.int32))
    return db


class TestEmptyInputs:
    def test_scan_on_empty_table(self, empty_db):
        spec = bind("select a from t where a > 0", empty_db)
        result = execute_functional(Planner(empty_db).plan(spec), empty_db)
        assert result.actual_rows == 0
        assert execute_reference(spec, empty_db) == []

    def test_scalar_aggregate_on_empty_table(self, empty_db):
        spec = bind("select sum(a) as s, count(*) as n from t", empty_db)
        result = execute_functional(Planner(empty_db).plan(spec), empty_db)
        rows = result.payload.row_tuples()
        assert len(rows) == 1
        assert int(rows[0][0]) == 0 and int(rows[0][1]) == 0

    def test_group_by_on_empty_table(self, empty_db):
        spec = bind("select a, count(*) as n from t group by a", empty_db)
        result = execute_functional(Planner(empty_db).plan(spec), empty_db)
        assert result.actual_rows == 0

    def test_distinct_on_empty_result(self, empty_db):
        spec = bind("select distinct a from t", empty_db)
        result = execute_functional(Planner(empty_db).plan(spec), empty_db)
        assert result.actual_rows == 0

    def test_simulated_execution_of_empty_query(self, empty_db):
        from repro.harness import run_workload
        from repro.workloads import sql_workload

        queries = sql_workload(empty_db, {"q": "select a from t"})
        run = run_workload(empty_db, queries, "data_driven_chopping",
                           collect_results=True)
        assert len(run.results["q"]) == 0


class TestDegeneratePredicates:
    def test_predicate_selecting_everything(self, toy_db):
        spec = bind("select amount from sales where amount >= 0", toy_db)
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        assert result.actual_rows == toy_db.table("sales").actual_rows

    def test_contradictory_between(self, toy_db):
        spec = bind(
            "select amount from sales where amount between 50 and 10",
            toy_db,
        )
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        assert result.actual_rows == 0

    def test_join_with_empty_build_side(self, toy_db):
        spec = bind(
            "select sum(amount) as s from sales, store "
            "where skey = id and size > 10000",
            toy_db,
        )
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        assert int(result.payload.column("s")[0]) == 0

    def test_in_list_with_single_value(self, toy_db):
        spec = bind("select amount from sales where skey in (3)", toy_db)
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        tids_expected = int(
            (toy_db.column("sales.skey").values == 3).sum()
        )
        assert result.actual_rows == tids_expected


class TestFrameOperatorEdges:
    def test_distinct_on_all_equal_rows(self, toy_db):
        scan = ScanSelect("sales")
        mat = Materialize(scan, [("one", Literal(1) if False else ColumnRef("sales", "skey"))])
        scanned = scan.run(toy_db, [])
        frame = mat.run(toy_db, [scanned])
        # overwrite to constant values
        frame.payload.columns["one"] = np.zeros(
            len(frame.payload), dtype=np.int32
        )
        distinct = Distinct(mat)
        out = distinct.run(toy_db, [frame])
        assert out.actual_rows == 1

    def test_frame_filter_type_errors(self, toy_db):
        scan = ScanSelect("sales")
        predicate = Comparison(">", ColumnRef("", "n"), Literal(1))
        having = FrameFilter(scan, predicate)
        scanned = scan.run(toy_db, [])
        with pytest.raises(TypeError):
            having.run(toy_db, [scanned])  # TidSet, not ResultFrame

    def test_distinct_type_errors(self, toy_db):
        scan = ScanSelect("sales")
        scanned = scan.run(toy_db, [])
        with pytest.raises(TypeError):
            Distinct(scan).run(toy_db, [scanned])


class TestStringGrouping:
    def test_group_by_string_column(self, toy_db):
        spec = bind(
            "select region, count(*) as n from sales, store "
            "where skey = id group by region order by region",
            toy_db,
        )
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        decoded = result.payload.decoded("region")
        assert decoded == sorted(decoded)
        assert int(result.payload.column("n").sum()) == (
            toy_db.table("sales").actual_rows
        )

    def test_multi_string_grouping(self, ssb_db):
        spec = bind(
            "select c_region, s_region, count(*) as n "
            "from customer, lineorder, supplier "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "group by c_region, s_region",
            ssb_db,
        )
        result = execute_functional(Planner(ssb_db).plan(spec), ssb_db)
        rows = result.payload.row_tuples()
        reference = execute_reference(spec, ssb_db)
        assert sorted(
            (a, b, int(n)) for a, b, n in rows
        ) == sorted((a, b, int(n)) for a, b, n in reference)


class TestSimEdges:
    def test_any_of_failure_before_success(self):
        from repro.sim import AnyOf, Environment

        env = Environment()
        caught = []

        def failing():
            yield env.timeout(1.0)
            raise ValueError("early")

        def proc():
            try:
                yield AnyOf(env, [env.process(failing()),
                                  env.timeout(5.0, "late")])
            except ValueError:
                caught.append(env.now)

        env.process(proc())
        env.run()
        assert caught == [1.0]

    def test_processor_stale_timer_after_arrival(self):
        """A new arrival must reschedule the completion timer."""
        from repro.hardware.processor import Processor, ProcessorKind
        from repro.sim import Environment

        env = Environment()
        cpu = Processor(env, "cpu", ProcessorKind.CPU)
        ends = {}

        def first():
            yield from cpu.execute(2.0)
            ends["first"] = env.now

        def second():
            yield env.timeout(1.9)  # arrives just before completion
            yield from cpu.execute(0.1)
            ends["second"] = env.now

        env.process(first())
        env.process(second())
        env.run()
        # at t=1.9 both jobs have 0.1s of work left; sharing stretches
        # that to 0.2s wall clock and both finish together at 2.1 —
        # the timer armed for first's solo completion (t=2.0) must have
        # been invalidated by second's arrival
        assert ends["first"] == pytest.approx(2.1)
        assert ends["second"] == pytest.approx(2.1)

    def test_bus_latency_only_charged_per_transfer(self):
        from repro.hardware import PCIeBus
        from repro.metrics import MetricsCollector
        from repro.sim import Environment

        env = Environment()
        metrics = MetricsCollector()
        bus = PCIeBus(env, 1000.0, latency_seconds=0.5, metrics=metrics)

        def proc():
            yield from bus.transfer(100, "h2d")
            yield from bus.transfer(100, "h2d")

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(2 * (0.5 + 0.1))


class TestOrderByStability:
    def test_order_by_with_ties_is_stable_per_sort_keys(self, toy_db):
        spec = bind(
            "select skey, count(*) as n from sales group by skey "
            "order by n desc, skey asc",
            toy_db,
        )
        result = execute_functional(Planner(toy_db).plan(spec), toy_db)
        rows = result.payload.row_tuples()
        # verify full ordering: n desc then skey asc
        keys = [(-int(n), int(k)) for k, n in rows]
        assert keys == sorted(keys)


class TestExplainEndToEnd:
    def test_explain_of_every_ssb_plan(self, ssb_db):
        from repro.workloads import ssb as ssb_module

        planner = Planner(ssb_db)
        for name, sql in ssb_module.QUERIES.items():
            plan = planner.plan(bind(sql, ssb_db, name=name))
            text = plan.explain()
            assert text.count("\n") + 1 == len(plan.operators), name
