"""Integration: every placement strategy must produce the same query
results as plain functional execution on the real benchmark workloads —
placement, caching, aborts, and fallbacks may change the timing, never
the answer."""

import pytest

from repro.core import STRATEGY_NAMES
from repro.engine.execution import execute_functional
from repro.harness import run_workload
from repro.hardware import SystemConfig
from repro.hardware.calibration import MIB
from repro.workloads import micro, ssb, tpch


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_ssb_results_identical_across_strategies(ssb_db, strategy):
    queries = ssb.workload(ssb_db, ["Q1.1", "Q2.1", "Q3.3", "Q4.1"])
    expected = {
        q.name: execute_functional(
            q.template_plan(), ssb_db
        ).payload.row_tuples()
        for q in queries
    }
    run = run_workload(ssb_db, queries, strategy, users=2,
                       collect_results=True)
    for name, rows in expected.items():
        assert run.results[name].row_tuples() == rows, (strategy, name)


@pytest.mark.parametrize("strategy",
                         ("gpu_only", "chopping", "data_driven_chopping"))
def test_tpch_results_identical_across_strategies(tpch_db, strategy):
    queries = tpch.workload(tpch_db)
    expected = {
        q.name: execute_functional(
            q.template_plan(), tpch_db
        ).payload.row_tuples()
        for q in queries
    }
    run = run_workload(tpch_db, queries, strategy, users=3,
                       collect_results=True)
    for name, rows in expected.items():
        assert run.results[name].row_tuples() == rows, (strategy, name)


@pytest.mark.parametrize("strategy", ("gpu_only", "runtime", "chopping"))
def test_results_correct_even_under_constant_aborts(ssb_db, strategy):
    """A starved device forces the fault-tolerance path on nearly every
    operator; results must still be exact."""
    config = SystemConfig(gpu_memory_bytes=8 * MIB, gpu_cache_bytes=2 * MIB)
    queries = ssb.workload(ssb_db, ["Q2.1", "Q3.1"])
    expected = {
        q.name: execute_functional(
            q.template_plan(), ssb_db
        ).payload.row_tuples()
        for q in queries
    }
    run = run_workload(ssb_db, queries, strategy, config=config,
                       users=4, repetitions=3, collect_results=True)
    for name, rows in expected.items():
        assert run.results[name].row_tuples() == rows, (strategy, name)


def test_micro_parallel_chain_under_all_executors(ssb_db):
    queries = micro.parallel_selection_workload(ssb_db)
    expected = execute_functional(
        queries[0].template_plan(), ssb_db
    ).payload.row_tuples()
    for strategy in ("cpu_only", "gpu_only", "chopping",
                     "data_driven_chopping"):
        run = run_workload(ssb_db, queries, strategy, users=3,
                           repetitions=6, collect_results=True)
        assert run.results["P1"].row_tuples() == expected, strategy


def test_device_state_clean_after_each_strategy(ssb_db):
    """No leaked device heap after any workload run."""
    queries = ssb.workload(ssb_db, ["Q1.1", "Q3.3"])
    for strategy in STRATEGY_NAMES:
        run = run_workload(ssb_db, queries, strategy, users=2, repetitions=2)
        assert run.metrics.peak_heap_bytes >= 0
        # makespan covers every recorded query interval
        for record in run.metrics.queries:
            assert record.end <= run.seconds + 1e-9
