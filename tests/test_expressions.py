"""Unit tests for vectorised expression evaluation."""

import numpy as np
import pytest

from repro.engine import Frame
from repro.engine.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
    conjunction,
    conjuncts,
)
from repro.storage import ColumnType, Database


@pytest.fixture()
def frame():
    db = Database()
    table = db.create_table("t")
    table.add_column("a", ColumnType.INT32,
                     np.array([1, 5, 10, 15], dtype=np.int32))
    table.add_column("b", ColumnType.INT32,
                     np.array([2, 2, 3, 3], dtype=np.int32))
    table.add_string_column("s", ["apple", "fig", "pear", "fig"])
    return Frame(db)


A = ColumnRef("t", "a")
B = ColumnRef("t", "b")
S = ColumnRef("t", "s")


def test_comparison_ops(frame):
    assert list(Comparison("<", A, Literal(10)).evaluate(frame)) == [
        True, True, False, False,
    ]
    assert list(Comparison(">=", A, Literal(10)).evaluate(frame)) == [
        False, False, True, True,
    ]
    assert list(Comparison("=", B, Literal(2)).evaluate(frame)) == [
        True, True, False, False,
    ]
    assert list(Comparison("<>", B, Literal(2)).evaluate(frame)) == [
        False, False, True, True,
    ]


def test_column_to_column_comparison(frame):
    assert list(Comparison("<", B, A).evaluate(frame)) == [
        False, True, True, True,
    ]


def test_between_inclusive(frame):
    assert list(Between(A, Literal(5), Literal(10)).evaluate(frame)) == [
        False, True, True, False,
    ]


def test_in_list_numeric(frame):
    assert list(InList(A, [1, 15]).evaluate(frame)) == [
        True, False, False, True,
    ]


def test_in_list_strings(frame):
    assert list(InList(S, ["fig", "pear"]).evaluate(frame)) == [
        False, True, True, True,
    ]


def test_in_list_unknown_string_selects_nothing(frame):
    assert not InList(S, ["banana"]).evaluate(frame).any()


def test_string_equality(frame):
    assert list(Comparison("=", S, Literal("fig")).evaluate(frame)) == [
        False, True, False, True,
    ]


def test_string_equality_unknown(frame):
    assert not Comparison("=", S, Literal("zzz")).evaluate(frame).any()


def test_string_range(frame):
    # 'apple' < 'fig' < 'pear'
    result = Comparison("<", S, Literal("pear")).evaluate(frame)
    assert list(result) == [True, True, False, True]
    result = Comparison(">=", S, Literal("fig")).evaluate(frame)
    assert list(result) == [False, True, True, True]


def test_string_range_unknown_bound(frame):
    # 'grape' sorts between 'fig' and 'pear'
    result = Comparison("<=", S, Literal("grape")).evaluate(frame)
    assert list(result) == [True, True, False, True]
    result = Comparison(">", S, Literal("grape")).evaluate(frame)
    assert list(result) == [False, False, True, False]


def test_string_between(frame):
    result = Between(S, Literal("apple"), Literal("fig")).evaluate(frame)
    assert list(result) == [True, True, False, True]


def test_reversed_string_literal_comparison(frame):
    # 'fig' <= s  <=>  s >= 'fig'
    result = Comparison("<=", Literal("fig"), S).evaluate(frame)
    assert list(result) == [False, True, True, True]


def test_arithmetic(frame):
    result = Arithmetic("+", A, B).evaluate(frame)
    assert list(result) == [3, 7, 13, 18]
    result = Arithmetic("-", A, B).evaluate(frame)
    assert list(result) == [-1, 3, 7, 12]


def test_multiplication_widens_int32():
    db = Database()
    table = db.create_table("t")
    big = np.array([2_000_000_000, 3], dtype=np.int32)
    table.add_column("x", ColumnType.INT32, big)
    frame = Frame(db)
    x = ColumnRef("t", "x")
    result = Arithmetic("*", x, x).evaluate(frame)
    assert result.dtype == np.int64
    assert result[0] == 4_000_000_000_000_000_000


def test_boolean_connectives(frame):
    left = Comparison("<", A, Literal(10))   # [T, T, F, F]
    right = Comparison("=", A, Literal(10))  # [F, F, T, F]
    assert list(And([left, right]).evaluate(frame)) == [
        False, False, False, False,
    ]
    assert list(Or([left, right]).evaluate(frame)) == [
        True, True, True, False,
    ]
    assert list(Not(left).evaluate(frame)) == [False, False, True, True]


def test_columns_discovery():
    expr = And([
        Comparison("<", A, Literal(1)),
        Between(B, Literal(0), Literal(9)),
    ])
    assert expr.columns() == {"t.a", "t.b"}


def test_conjuncts_flattening():
    expr = And([
        Comparison("<", A, Literal(1)),
        And([Comparison(">", B, Literal(0)), Comparison("=", A, B)]),
    ])
    assert len(conjuncts(expr)) == 3


def test_conjunction_builder():
    assert conjunction([]) is None
    single = Comparison("<", A, Literal(1))
    assert conjunction([single]) is single
    combined = conjunction([single, Comparison(">", B, Literal(0))])
    assert isinstance(combined, And)


def test_aggregate_validation():
    with pytest.raises(ValueError):
        Aggregate("median", A, "m")
    agg = Aggregate("SUM", A, "total")
    assert agg.func == "sum"
    assert agg.columns() == {"t.a"}


def test_invalid_operators_rejected():
    with pytest.raises(ValueError):
        Comparison("~", A, Literal(1))
    with pytest.raises(ValueError):
        Arithmetic("%", A, Literal(1))
    with pytest.raises(ValueError):
        And([])
    with pytest.raises(ValueError):
        Or([])


def test_to_sql_round_trippable_text():
    expr = And([
        Between(A, Literal(1), Literal(3)),
        InList(S, ["fig"]),
        Comparison("<>", B, Literal(2)),
    ])
    text = expr.to_sql()
    assert "BETWEEN" in text and "IN" in text and "<>" in text
