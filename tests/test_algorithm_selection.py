"""Tests for HyPE's algorithm selection."""

import pytest

from repro.hardware.calibration import COGADB_PROFILE, GIB, KIB
from repro.hardware.processor import ProcessorKind
from repro.hype import LearnedCostModel, choose_algorithm


@pytest.fixture()
def cost_model():
    return LearnedCostModel(COGADB_PROFILE)


class TestProfileVariants:
    def test_kinds_with_variants(self):
        assert set(COGADB_PROFILE.algorithm_names("join")) == {
            "hash_join", "nested_loop_join",
        }
        assert set(COGADB_PROFILE.algorithm_names("sort")) == {
            "radix_sort", "insertion_sort",
        }
        assert COGADB_PROFILE.algorithm_names("selection") == ()

    def test_composite_key_addressing(self):
        bulk = COGADB_PROFILE.compute_seconds(
            "join#hash_join", ProcessorKind.CPU, GIB
        )
        small = COGADB_PROFILE.compute_seconds(
            "join#nested_loop_join", ProcessorKind.CPU, GIB
        )
        # the variant loses badly on bulk inputs
        assert small > bulk

    def test_variant_wins_on_small_inputs(self):
        bulk = COGADB_PROFILE.compute_seconds(
            "join#hash_join", ProcessorKind.CPU, 4 * KIB
        )
        small = COGADB_PROFILE.compute_seconds(
            "join#nested_loop_join", ProcessorKind.CPU, 4 * KIB
        )
        assert small < bulk  # lower startup dominates tiny inputs

    def test_default_curve_matches_base_calibration(self):
        for kind, default in (("join", "hash_join"),
                              ("sort", "radix_sort"),
                              ("groupby", "hash_aggregate")):
            base = COGADB_PROFILE.compute_seconds(
                kind, ProcessorKind.GPU, GIB
            )
            named = COGADB_PROFILE.compute_seconds(
                "{}#{}".format(kind, default), ProcessorKind.GPU, GIB
            )
            assert named == base


class TestChooser:
    def test_large_input_picks_bulk_algorithm(self, cost_model):
        key, estimate = choose_algorithm(
            cost_model, COGADB_PROFILE, "join", ProcessorKind.CPU, GIB
        )
        assert key == "join#hash_join"
        assert estimate > 0

    def test_small_input_picks_low_startup_algorithm(self, cost_model):
        key, _ = choose_algorithm(
            cost_model, COGADB_PROFILE, "join", ProcessorKind.CPU, 1 * KIB
        )
        assert key == "join#nested_loop_join"

    def test_kind_without_variants_passes_through(self, cost_model):
        key, estimate = choose_algorithm(
            cost_model, COGADB_PROFILE, "selection", ProcessorKind.GPU, GIB
        )
        assert key == "selection"
        assert estimate == COGADB_PROFILE.compute_seconds(
            "selection", ProcessorKind.GPU, GIB
        )

    def test_learned_observations_override_analytics(self, cost_model):
        cost_model.min_observations = 2
        cost_model.refit_interval = 1
        # teach the model that the bulk join is catastrophically slow
        for size in (1e6, 2e6, 4e6):
            cost_model.observe("join#hash_join", ProcessorKind.CPU,
                               size, 100.0)
        key, _ = choose_algorithm(
            cost_model, COGADB_PROFILE, "join", ProcessorKind.CPU, 2e6
        )
        assert key == "join#nested_loop_join"


class TestEndToEnd:
    def test_workload_records_algorithm_choices(self):
        from repro.harness import experiments as E
        from repro.harness import run_workload
        from repro.workloads import ssb

        database = E.ssb_database(10)  # paper-scale joins are bulk
        queries = ssb.workload(database, ["Q2.1", "Q3.1"])
        run = run_workload(database, queries, "data_driven_chopping",
                           repetitions=2)
        selected = run.metrics.algorithms
        assert sum(selected.values()) > 0
        # the bulk hash join carries the fact-table joins
        assert "join#hash_join" in selected

    def test_mixed_sizes_select_both_variants(self, ssb_db):
        """Fact-side joins are bulk; tiny frame sorts pick the
        low-startup variant."""
        from repro.harness import run_workload
        from repro.workloads import ssb

        queries = ssb.workload(ssb_db)
        run = run_workload(ssb_db, queries, "cpu_only", repetitions=1)
        selected = run.metrics.algorithms
        sort_keys = {k for k in selected if k.startswith("sort#")}
        # SSB result frames are small: the insertion variant appears
        assert "sort#insertion_sort" in sort_keys
