"""Unit tests for the device heap allocator."""

import pytest

from repro.hardware import DeviceHeap, DeviceOutOfMemory
from repro.metrics import MetricsCollector


def test_allocate_and_free_accounting():
    heap = DeviceHeap(1000)
    a = heap.allocate(400, owner="op1")
    b = heap.allocate(600, owner="op2")
    assert heap.used == 1000
    assert heap.available == 0
    a.free()
    assert heap.used == 600
    b.free()
    assert heap.used == 0
    assert heap.live_allocations == 0


def test_over_allocation_raises():
    heap = DeviceHeap(100)
    heap.allocate(80)
    with pytest.raises(DeviceOutOfMemory) as excinfo:
        heap.allocate(50)
    assert excinfo.value.requested == 50
    assert excinfo.value.available == 20


def test_exact_fit_allocation_succeeds():
    heap = DeviceHeap(100)
    allocation = heap.allocate(100)
    assert heap.available == 0
    allocation.free()
    assert heap.available == 100


def test_free_is_idempotent():
    heap = DeviceHeap(100)
    allocation = heap.allocate(10)
    allocation.free()
    allocation.free()  # no error, no double accounting
    assert heap.used == 0


def test_shrink_releases_partial_space():
    heap = DeviceHeap(100)
    allocation = heap.allocate(80)
    allocation.shrink(30)
    assert heap.used == 30
    assert allocation.nbytes == 30
    allocation.free()
    assert heap.used == 0


def test_shrink_cannot_grow():
    heap = DeviceHeap(100)
    allocation = heap.allocate(10)
    with pytest.raises(ValueError):
        allocation.shrink(20)


def test_shrink_after_free_is_error():
    heap = DeviceHeap(100)
    allocation = heap.allocate(10)
    allocation.free()
    with pytest.raises(RuntimeError):
        allocation.shrink(5)


def test_negative_and_zero_sizes():
    heap = DeviceHeap(100)
    with pytest.raises(ValueError):
        heap.allocate(-1)
    zero = heap.allocate(0)
    assert heap.used == 0
    zero.free()


def test_can_allocate_probe():
    heap = DeviceHeap(100)
    assert heap.can_allocate(100)
    assert not heap.can_allocate(101)
    heap.allocate(60)
    assert heap.can_allocate(40)
    assert not heap.can_allocate(41)


def test_peak_usage_recorded_in_metrics():
    metrics = MetricsCollector()
    heap = DeviceHeap(1000, metrics=metrics)
    a = heap.allocate(300)
    b = heap.allocate(500)
    a.free()
    heap.allocate(100)
    assert metrics.peak_heap_bytes == 800
    b.free()
