"""Tests for the overload-safe query lifecycle layer.

Covers the three tentpole features (admission control, deadlines with
cooperative cancellation, straggler hedging), the zero-overhead
guarantee of the disabled layer, and the PR's satellites: prefetcher
skip-set invalidation through the cache registry, per-device breaker
open time in ``fault_summary``, cancellation racing an in-flight
coalesced copy-engine transfer, and the hypothesis property that a
prefix-cancelled query stream leaves the system in a state where
re-running uncancelled yields byte-identical results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_context
from repro.core import ChoppingExecutor
from repro.core.placement import RuntimeHype
from repro.engine import caches
from repro.engine.execution import (
    AdmissionController,
    LifecycleConfig,
    QueryCancelled,
    QueryContext,
    execute_functional,
)
from repro.faults import FaultConfig
from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.hardware import SystemConfig
from repro.hardware.copy_engine import CopyEngine
from repro.hardware.errors import PCIeTransferFault
from repro.metrics import MetricsCollector
from repro.sim import Environment, Interrupted
from repro.workloads import ssb


def _run(db, lifecycle=None, strategy="chopping", users=4, faults=None,
         validate=False, collect_results=False):
    return run_workload(
        db, ssb.workload(db), strategy, config=E.FULL_CONFIG,
        users=users, repetitions=1, faults=faults, lifecycle=lifecycle,
        validate=validate, collect_results=collect_results,
    )


def _payload_rows(run):
    return {name: tuple(table.row_tuples())
            for name, table in run.results.items()}


# ---------------------------------------------------------------------------
# LifecycleConfig parsing / validation
# ---------------------------------------------------------------------------

def test_config_defaults_are_disabled():
    config = LifecycleConfig()
    assert not config.enabled
    assert LifecycleConfig.coerce(None) is None


def test_config_parse_spec_and_aliases():
    config = LifecycleConfig.parse(
        "max_inflight=4,policy=shed,deadline=2.5,hedge=3,headroom=0.1")
    assert config.max_inflight == 4
    assert config.overload_policy == "shed"
    assert config.deadline_seconds == 2.5
    assert config.hedge_factor == 3.0
    assert config.heap_headroom_fraction == 0.1
    assert config.enabled
    assert LifecycleConfig.coerce("max_inflight=2").max_inflight == 2


def test_config_rejects_bad_values():
    with pytest.raises(ValueError):
        LifecycleConfig(max_inflight=0)
    with pytest.raises(ValueError):
        LifecycleConfig(overload_policy="panic")
    with pytest.raises(ValueError):
        LifecycleConfig(deadline_seconds=0.0)
    with pytest.raises(ValueError):
        LifecycleConfig(hedge_factor=-1.0)
    with pytest.raises(ValueError):
        LifecycleConfig.parse("no_such_knob=1")


# ---------------------------------------------------------------------------
# Zero overhead when disabled
# ---------------------------------------------------------------------------

def test_disabled_lifecycle_is_zero_overhead(ssb_db):
    base = _run(ssb_db, lifecycle=None, collect_results=True)
    off = _run(ssb_db, lifecycle=LifecycleConfig(), collect_results=True)
    assert not base.lifecycle_enabled and not off.lifecycle_enabled
    assert base.seconds == off.seconds
    assert _payload_rows(base) == _payload_rows(off)


def test_disabled_lifecycle_keeps_fault_digest(ssb_db):
    faults = FaultConfig.uniform(0.05, seed=7)
    base = _run(ssb_db, lifecycle=None, faults=faults)
    off = _run(ssb_db, lifecycle=LifecycleConfig(), faults=faults)
    assert base.fault_digest == off.fault_digest
    assert base.faults_injected == off.faults_injected
    assert base.seconds == off.seconds


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_admission_queue_policy_completes_everything(ssb_db):
    run = _run(ssb_db, lifecycle=LifecycleConfig(max_inflight=2),
               users=6, validate=True)
    metrics = run.metrics
    assert run.lifecycle_enabled
    assert metrics.admission_waits > 0
    assert metrics.admission_wait_seconds > 0.0
    # queueing delays but never drops: the whole stream completes
    assert len(metrics.queries) == len(ssb.workload(ssb_db))
    assert sum(metrics.sheds.values()) == 0
    assert len(metrics.cancelled_queries) == 0


def test_admission_shed_policy_drops_excess_load(ssb_db):
    run = _run(ssb_db, users=6, validate=True,
               lifecycle=LifecycleConfig(max_inflight=1,
                                         overload_policy="shed"))
    metrics = run.metrics
    shed = sum(metrics.sheds.values())
    assert shed > 0
    assert len(metrics.queries) + shed == len(ssb.workload(ssb_db))


def test_admission_degrade_policy_runs_on_cpu(ssb_db):
    run = _run(ssb_db, users=6, validate=True,
               lifecycle=LifecycleConfig(max_inflight=1,
                                         overload_policy="degrade-to-cpu"))
    metrics = run.metrics
    assert sum(metrics.degraded_to_cpu.values()) > 0
    # degraded queries still complete (on the CPU), nothing is dropped
    assert len(metrics.queries) == len(ssb.workload(ssb_db))


def test_admission_controller_fifo_wakeup():
    """Direct-drive: queued waiters are woken in order, slots balance."""
    env = Environment()
    hardware = type("H", (), {"gpus": ()})()
    controller = AdmissionController(
        env, hardware, LifecycleConfig(max_inflight=1))
    order = []

    def query(name, hold):
        decision = yield from controller.admit()
        assert decision == "run"
        order.append(name)
        yield env.timeout(hold)
        controller.release()

    for name, hold in (("a", 3.0), ("b", 1.0), ("c", 1.0)):
        env.process(query(name, hold))
    env.run()
    assert order == ["a", "b", "c"]
    assert controller.inflight == 0
    assert controller.queue_depth == 0


# ---------------------------------------------------------------------------
# Deadlines and cooperative cancellation
# ---------------------------------------------------------------------------

def _median_latency(run):
    return run.metrics.latency_percentile(0.50)


def test_deadline_cancels_and_survivors_stay_correct(ssb_db):
    base = _run(ssb_db, users=4, collect_results=True)
    deadline = _median_latency(base) * 0.5
    assert deadline > 0.0
    run = _run(ssb_db, users=4, validate=True, collect_results=True,
               lifecycle=LifecycleConfig(deadline_seconds=deadline))
    metrics = run.metrics
    cancelled = len(metrics.cancelled_queries)
    assert cancelled > 0
    assert sum(metrics.deadline_misses.values()) == cancelled
    total = len(ssb.workload(ssb_db))
    assert len(metrics.queries) + cancelled == total
    # the survivors' results are byte-identical to an uncancelled run
    base_rows = _payload_rows(base)
    for name, rows in _payload_rows(run).items():
        assert rows == base_rows[name]


def test_cancelled_run_leaves_device_state_clean(ssb_db):
    base = _run(ssb_db, users=4)
    deadline = _median_latency(base) * 0.5
    run = _run(ssb_db, users=4,
               lifecycle=LifecycleConfig(deadline_seconds=deadline))
    assert len(run.metrics.cancelled_queries) > 0
    # cancel drains were recorded for every cancellation
    assert run.metrics.cancels == len(run.metrics.cancelled_queries)


# ---------------------------------------------------------------------------
# Straggler hedging
# ---------------------------------------------------------------------------

def test_hedging_races_stragglers_and_stays_correct(ssb_db):
    run = _run(ssb_db, users=2, validate=True,
               faults=FaultConfig.parse("stall=0.4,seed=7"),
               lifecycle=LifecycleConfig(hedge_factor=1.5))
    metrics = run.metrics
    assert metrics.hedges_started > 0
    # every resolved hedge has exactly one winner
    assert metrics.hedge_wins + metrics.hedge_losses <= metrics.hedges_started
    assert metrics.hedge_wins > 0
    assert len(metrics.queries) == len(ssb.workload(ssb_db))


def test_hedging_disabled_on_runtime_strategy(ssb_db):
    """The eager executor has no worker pools: hedging is a no-op."""
    run = _run(ssb_db, strategy="runtime", users=2,
               lifecycle=LifecycleConfig(hedge_factor=0.5))
    assert run.metrics.hedges_started == 0
    assert len(run.metrics.queries) == len(ssb.workload(ssb_db))


def test_combined_lifecycle_under_faults(ssb_db):
    """Admission + deadlines + hedging + fault injection all at once."""
    base = _run(ssb_db, users=8)
    run = _run(ssb_db, users=8, validate=True,
               faults=FaultConfig.uniform(0.02, seed=7),
               lifecycle=LifecycleConfig(
                   max_inflight=2, hedge_factor=3.0,
                   deadline_seconds=_median_latency(base) * 20.0))
    metrics = run.metrics
    total = len(ssb.workload(ssb_db))
    assert len(metrics.queries) + len(metrics.cancelled_queries) == total
    assert metrics.admission_waits > 0


# ---------------------------------------------------------------------------
# Satellite: per-device breaker open time in fault_summary
# ---------------------------------------------------------------------------

def test_fault_summary_reports_breaker_open_seconds(ssb_db):
    run = _run(ssb_db, strategy="runtime", users=2,
               faults=FaultConfig.uniform(0.2, seed=7))
    summary = run.metrics.fault_summary()
    assert "breaker_open_seconds" in summary
    per_device = [key for key in summary
                  if key.startswith("breaker_open_seconds_")]
    if summary.get("breaker_to_open", 0) > 0:
        assert summary["breaker_open_seconds"] > 0.0
        assert per_device
        assert summary["breaker_open_seconds"] == pytest.approx(
            sum(summary[key] for key in per_device))


# ---------------------------------------------------------------------------
# Satellite: prefetcher skip sets clear through the cache registry
# ---------------------------------------------------------------------------

def test_prefetch_skips_cleared_by_cache_registry(ssb_db, tpch_db):
    from repro.core.data_placement import (
        DataPlacementManager, PlacementPrefetcher)

    env, hw, ctx = make_context(ssb_db, SystemConfig(copy_engine=True))
    manager = DataPlacementManager(ssb_db, cache=hw.gpu_cache)
    prefetcher = PlacementPrefetcher(hw, manager)
    device = hw.gpu_names[0]
    prefetcher._skip[device] = {"some.column", "other.column"}
    assert "prefetch_skips" in caches.registered()
    assert caches.cache_sizes()["prefetch_skips"] >= 2
    # clearing caches of an unrelated database leaves the skips alone
    caches.invalidate_all(database=tpch_db)
    assert prefetcher.skip_count() == 2
    # clearing this database's caches (or everything) drops them
    caches.invalidate_all(database=ssb_db)
    assert prefetcher.skip_count() == 0
    prefetcher._skip[device] = {"some.column"}
    E.clear_database_caches()
    assert prefetcher.skip_count() == 0


# ---------------------------------------------------------------------------
# Satellite: cancellation racing an in-flight coalesced transfer
# ---------------------------------------------------------------------------

def _coalescing_engine():
    env = Environment()
    metrics = MetricsCollector()
    engine = CopyEngine(env, bandwidth_bytes_per_second=1024.0,
                        chunk_bytes=256, metrics=metrics)
    return env, metrics, engine


def test_cancelling_attached_waiter_leaves_owner_running():
    env, metrics, engine = _coalescing_engine()
    nbytes = 1024  # 4 chunks, 1.0 s of wire time
    finished = {}

    def owner():
        yield from engine.transfer(nbytes, "h2d", device="gpu0", key="col")
        finished["owner"] = env.now

    def waiter():
        yield from engine.transfer(nbytes, "h2d", device="gpu0", key="col")
        finished["waiter"] = env.now

    env.process(owner())
    victim = env.process(waiter())

    def cancel():
        yield env.timeout(0.5)
        victim.defused = True
        victim.interrupt(QueryCancelled("q", "deadline"))

    env.process(cancel())
    env.run()
    # the owning copy is untouched: full wire time, full bytes, once
    assert finished["owner"] == pytest.approx(1.0)
    assert "waiter" not in finished
    assert metrics.cpu_to_gpu_bytes == nbytes
    assert metrics.coalesced_transfers == 1
    assert not engine.in_flight("gpu0", "h2d", "col")


def test_cancelling_owner_spares_coalesced_waiter():
    env, metrics, engine = _coalescing_engine()
    nbytes = 1024  # 4 chunks, 1.0 s of wire time
    finished = {}

    def owner():
        try:
            yield from engine.transfer(nbytes, "h2d", device="gpu0",
                                       key="col")
        except Interrupted:
            finished["owner"] = "cancelled"
            return
        finished["owner"] = env.now

    def waiter():
        yield env.timeout(0.1)  # attach to the copy already on the wire
        try:
            yield from engine.transfer(nbytes, "h2d", device="gpu0",
                                       key="col")
        except PCIeTransferFault:
            # the owner died; retry under our own policy, like the
            # operator-level resilience layer would
            yield from engine.transfer(nbytes, "h2d", device="gpu0",
                                       key="col")
        finished["waiter"] = env.now

    victim = env.process(owner())
    env.process(waiter())

    def cancel():
        yield env.timeout(0.5)
        victim.defused = True
        victim.interrupt(QueryCancelled("q", "deadline"))

    env.process(cancel())
    env.run()
    # the waiter survives the owner's cancellation and completes its
    # own full copy after the retry
    assert finished["owner"] == "cancelled"
    assert finished["waiter"] == pytest.approx(1.5)
    assert not engine.in_flight("gpu0", "h2d", "col")
    # accounting is chunk-aligned: the aborted copy burned 0.5 s and
    # landed exactly two whole 256-byte chunks, the retry landed all 4
    assert metrics.cpu_to_gpu_bytes == 2 * 256 + nbytes
    assert metrics.cpu_to_gpu_seconds == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# Satellite: prefix-cancelled streams leave no residue (property test)
# ---------------------------------------------------------------------------

N_STREAM = 4


def _stream_queries(db):
    return ssb.workload(db)[:N_STREAM]


def _reference_rows(db):
    return [tuple(execute_functional(q.instantiate(), db)
                  .payload.row_tuples())
            for q in _stream_queries(db)]


def _clean_makespan(db):
    env, hw, ctx = make_context(db, E.FULL_CONFIG)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    for query in _stream_queries(db):
        chopper.submit(query.instantiate())
    env.run()
    return env.now


@settings(max_examples=8, deadline=None)
@given(prefix=st.integers(min_value=1, max_value=N_STREAM),
       fraction=st.floats(min_value=0.0, max_value=1.0))
def test_prefix_cancelled_stream_leaves_byte_identical_rerun(
        ssb_db, prefix, fraction):
    """Cancel the first ``prefix`` queries of a concurrent stream at an
    arbitrary point of its makespan; re-running the full stream in the
    same simulation must yield byte-identical results and a clean heap.
    """
    expected = _reference_rows(ssb_db)
    cancel_at = _clean_makespan(ssb_db) * fraction

    env, hw, ctx = make_context(ssb_db, E.FULL_CONFIG)
    chopper = ChoppingExecutor(
        ctx, RuntimeHype(),
        lifecycle=LifecycleConfig(hedge_factor=3.0))
    queries = _stream_queries(ssb_db)
    first_pass = {}
    contexts = []

    def run_one(index, query, qctx, sink):
        done = chopper.submit(query.instantiate(), qctx)
        try:
            result = yield done
        except (QueryCancelled, Interrupted):
            return
        finally:
            if qctx is not None:
                qctx.finish()
        sink[index] = tuple(result.payload.row_tuples())

    for index, query in enumerate(queries):
        qctx = None
        if index < prefix:
            qctx = QueryContext(env, query.name, metrics=ctx.metrics)
            contexts.append(qctx)
        env.process(run_one(index, query, qctx, first_pass))

    def cancel_prefix():
        yield env.timeout(cancel_at)
        for qctx in contexts:
            qctx.cancel("test")

    env.process(cancel_prefix())
    env.run()

    # whatever survived pass 1 is already byte-identical
    for index, rows in first_pass.items():
        assert rows == expected[index]

    # pass 2 in the SAME simulation: every query, uncancelled
    second_pass = {}
    for index, query in enumerate(queries):
        env.process(run_one(index, query, None, second_pass))
    env.run()
    assert sorted(second_pass) == list(range(len(queries)))
    for index, rows in second_pass.items():
        assert rows == expected[index]
    assert hw.gpu_heap.used == 0
