"""Unit tests for the simulated operator lifecycle: staging, caching,
allocation, aborts, and the CPU fallback."""

import numpy as np
import pytest

from tests.conftest import make_context
from repro.engine.execution import execute_operator
from repro.engine.expressions import ColumnRef, Comparison, Literal
from repro.engine.operators import HashJoin, Materialize, ScanSelect
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB, MIB

AMOUNT = ColumnRef("sales", "amount")


def run_op(env, ctx, op, child_results, processor, admit=True):
    proc = env.process(
        execute_operator(ctx, op, child_results, processor, admit)
    )
    env.run()
    return proc.value


def small_config(**kwargs):
    defaults = dict(gpu_memory_bytes=64 * MIB, gpu_cache_bytes=16 * MIB)
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def test_cpu_execution_takes_calibrated_time(toy_db):
    env, hw, ctx = make_context(toy_db)
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "cpu")
    input_bytes = toy_db.column("sales.amount").nominal_bytes
    expected = ctx.profile.compute_seconds(
        "selection", hw.cpu.kind, input_bytes
    )
    assert env.now == pytest.approx(expected)
    assert result.location == "cpu"
    assert hw.metrics.aborts == 0


def test_gpu_miss_transfers_and_admits(toy_db):
    env, hw, ctx = make_context(toy_db, small_config())
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "gpu")
    assert result.location == "gpu"
    assert "sales.amount" in hw.gpu_cache
    assert hw.metrics.cache_misses == 1
    assert hw.metrics.cpu_to_gpu_bytes == toy_db.column(
        "sales.amount"
    ).nominal_bytes
    result.release_device_memory()


def test_gpu_hit_avoids_transfer(toy_db):
    env, hw, ctx = make_context(toy_db, small_config())
    column = toy_db.column("sales.amount")
    hw.gpu_cache.admit("sales.amount", column.nominal_bytes)
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "gpu")
    assert hw.metrics.cpu_to_gpu_bytes == 0
    assert hw.metrics.cache_hits == 1
    result.release_device_memory()


def test_data_driven_staging_does_not_admit(toy_db):
    env, hw, ctx = make_context(toy_db, small_config())
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "gpu", admit=False)
    # transferred but not cached: the placement manager owns the cache
    assert hw.metrics.cpu_to_gpu_bytes > 0
    assert "sales.amount" not in hw.gpu_cache
    result.release_device_memory()
    assert hw.gpu_heap.used == 0


def test_cpu_only_operator_never_runs_on_gpu(toy_db):
    env, hw, ctx = make_context(toy_db)
    scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    scan_result = run_op(env, ctx, scan, [], "cpu")
    mat = Materialize(scan, [("amount", AMOUNT)])
    result = run_op(env, ctx, mat, [scan_result], "gpu")
    assert result.location == "cpu"
    assert hw.metrics.operators_per_processor["gpu"] == 0


def test_oom_abort_falls_back_to_cpu(toy_db):
    # heap too small for the 3.25x selection footprint
    config = SystemConfig(gpu_memory_bytes=5 * MIB, gpu_cache_bytes=4 * MIB)
    env, hw, ctx = make_context(toy_db, config)
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "gpu")
    assert result.location == "cpu"
    assert hw.metrics.aborts == 1
    assert hw.gpu_heap.used == 0  # rollback complete
    # the functional result is still correct
    expected = np.flatnonzero(toy_db.column("sales.amount").values < 30)
    assert np.array_equal(result.payload.positions("sales"), expected)


def test_abort_wasted_time_includes_staging(toy_db):
    # cache holds nothing, heap too small: the column transfer happens
    # before the failed allocation, so wasted time > 0
    config = SystemConfig(gpu_memory_bytes=4 * MIB, gpu_cache_bytes=0)
    env, hw, ctx = make_context(toy_db, config)
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    run_op(env, ctx, op, [], "gpu")
    assert hw.metrics.aborts == 1
    assert hw.metrics.wasted_seconds > 0


def test_gpu_result_stays_on_heap_until_released(toy_db):
    env, hw, ctx = make_context(toy_db)
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    result = run_op(env, ctx, op, [], "gpu")
    assert result.allocation is not None
    assert hw.gpu_heap.used == result.nominal_bytes
    result.release_device_memory()
    assert hw.gpu_heap.used == 0


def test_parent_on_cpu_pays_d2h_for_gpu_child(toy_db):
    env, hw, ctx = make_context(toy_db)
    scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    scan_result = run_op(env, ctx, scan, [], "gpu")
    mat = Materialize(scan, [("amount", AMOUNT)])
    run_op(env, ctx, mat, [scan_result], "cpu")
    assert hw.metrics.gpu_to_cpu_bytes == scan_result.nominal_bytes


def test_parent_consumption_frees_child_device_memory(toy_db):
    env, hw, ctx = make_context(toy_db)
    scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    scan_result = run_op(env, ctx, scan, [], "gpu")
    assert hw.gpu_heap.used > 0
    mat = Materialize(scan, [("amount", AMOUNT)])
    run_op(env, ctx, mat, [scan_result], "cpu")
    assert hw.gpu_heap.used == 0


def test_gpu_parent_of_cpu_child_pays_h2d(toy_db):
    env, hw, ctx = make_context(toy_db)
    probe = ScanSelect("sales", Comparison("<", AMOUNT, Literal(90)))
    build = ScanSelect("store")
    probe_result = run_op(env, ctx, probe, [], "cpu")
    build_result = run_op(env, ctx, build, [], "cpu")
    join = HashJoin(probe, build, ColumnRef("sales", "skey"),
                    ColumnRef("store", "id"))
    before = hw.metrics.cpu_to_gpu_bytes
    result = run_op(env, ctx, join, [probe_result, build_result], "gpu")
    moved = hw.metrics.cpu_to_gpu_bytes - before
    # the probe tid list and the key columns all crossed the bus
    assert moved >= probe_result.nominal_bytes
    result.release_device_memory()


def test_access_statistics_recorded(toy_db):
    env, hw, ctx = make_context(toy_db)
    toy_db.statistics.reset()
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    run_op(env, ctx, op, [], "cpu")
    assert toy_db.statistics.access_count("sales.amount") == 1


def test_cost_model_learns_from_execution(toy_db):
    env, hw, ctx = make_context(toy_db)
    ctx.cost_model.min_observations = 1
    ctx.cost_model.refit_interval = 1
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    run_op(env, ctx, op, [], "cpu")
    assert ctx.cost_model.store.count("selection", hw.cpu.kind) == 1


def test_cache_in_use_entries_survive_concurrent_eviction_pressure(toy_db):
    """A column in use by a running operator is never evicted."""
    column = toy_db.column("sales.amount")
    config = SystemConfig(
        gpu_memory_bytes=2 * GIB,
        # room for exactly one column in the cache
        gpu_cache_bytes=column.nominal_bytes + 1,
    )
    env, hw, ctx = make_context(toy_db, config)

    op1 = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    op2 = ScanSelect(
        "sales", Comparison("<", ColumnRef("sales", "price"), Literal(10))
    )
    results = []

    def run_both():
        first = env.process(execute_operator(ctx, op1, [], "gpu"))
        second = env.process(execute_operator(ctx, op2, [], "gpu"))
        results.append((yield first))
        results.append((yield second))

    env.process(run_both())
    env.run()
    # both completed on some processor with correct results
    assert len(results) == 2
    for result in results:
        result.release_device_memory()
    assert hw.gpu_heap.used == 0
