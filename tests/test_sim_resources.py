"""Unit tests for DES resources and stores."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def worker(name, hold):
        req = res.request()
        yield req
        grants.append((name, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(worker("a", 5.0))
    env.process(worker("b", 5.0))
    env.process(worker("c", 5.0))
    env.run()
    # a and b start immediately, c waits for the first release.
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    for name in "abcde":
        env.process(worker(name))
    env.run()
    assert order == list("abcde")


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_in_use_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)
    observed = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    def observer():
        yield env.timeout(1.0)
        observed.append((res.in_use, res.queue_length))

    env.process(holder())
    env.process(waiter())
    env.process(observer())
    env.run()
    assert observed == [(1, 1)]


def test_cancel_ungranted_request():
    env = Environment()
    res = Resource(env, capacity=1)
    trace = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def impatient():
        req = res.request()
        yield env.timeout(1.0)
        # Give up before the grant.
        res.release(req)
        trace.append("cancelled")

    def late():
        yield env.timeout(2.0)
        req = res.request()
        yield req
        trace.append(("late", env.now))
        res.release(req)

    env.process(holder())
    env.process(impatient())
    env.process(late())
    env.run()
    assert trace == ["cancelled", ("late", 5.0)]


def test_release_unissued_request_is_error():
    env = Environment()
    res_a = Resource(env, capacity=1)
    res_b = Resource(env, capacity=1)
    req = res_a.request()  # granted on a
    res_a.release(req)
    req2 = res_b.request()
    res_b.release(req2)
    # Releasing an already-released, never-queued request fails loudly.
    with pytest.raises(RuntimeError):
        res_b.release(req2)


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    seen = []

    def consumer():
        item = yield store.get()
        seen.append((env.now, item))

    store.put("x")
    env.process(consumer())
    env.run()
    assert seen == [(0.0, "x")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    seen = []

    def consumer():
        item = yield store.get()
        seen.append((env.now, item))

    def producer():
        yield env.timeout(7.0)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert seen == [(7.0, "late")]


def test_store_fifo_items_and_consumers():
    env = Environment()
    store = Store(env)
    seen = []

    def consumer(name):
        item = yield store.get()
        seen.append((name, item))

    env.process(consumer("c1"))
    env.process(consumer("c2"))

    def producer():
        yield env.timeout(1.0)
        store.put("first")
        store.put("second")
        store.put("third")

    env.process(producer())
    env.run()
    assert seen == [("c1", "first"), ("c2", "second")]
    assert store.items == ["third"]
    assert len(store) == 1
