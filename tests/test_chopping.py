"""Unit tests for the query-chopping executor."""

import numpy as np
import pytest

from tests.conftest import make_context
from repro.core import ChoppingExecutor, get_strategy
from repro.core.placement import DataDrivenRuntime, RuntimeHype
from repro.engine import Planner
from repro.engine.execution import execute_functional
from repro.engine.operators import PhysicalOperator, PhysicalPlan
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB, MIB
from repro.sql import bind


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region order by s desc"
)


def make_plan(db, sql=JOIN_SQL, name="q"):
    return Planner(db).plan(bind(sql, db, name=name))


def test_chopping_produces_correct_results(toy_db):
    env, hw, ctx = make_context(toy_db)
    expected = execute_functional(make_plan(toy_db), toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    done = chopper.submit(make_plan(toy_db))
    env.run()
    result = done.value
    assert result.payload.row_tuples() == expected.payload.row_tuples()
    assert result.location == "cpu"  # final results live on the host


def test_chopping_runs_multiple_queries_concurrently(toy_db):
    env, hw, ctx = make_context(toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    events = [chopper.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(5)]
    env.run()
    assert all(e.triggered and e.ok for e in events)
    # shared worker pools: total time is less than five serial runs
    # would be if no inter-query parallelism existed (smoke check)
    assert env.now > 0


def test_worker_pool_bounds_gpu_concurrency(toy_db):
    """At most gpu_workers operators may hold GPU state at once."""
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)

    peak = {"jobs": 0}
    original = hw.gpu.submit

    def tracking_submit(seconds):
        event = original(seconds)
        peak["jobs"] = max(peak["jobs"], hw.gpu.active_jobs)
        return event

    hw.gpu.submit = tracking_submit
    chopper = ChoppingExecutor(ctx, RuntimeHype(), cpu_workers=4,
                               gpu_workers=2)
    for i in range(8):
        chopper.submit(make_plan(toy_db, name="q{}".format(i)))
    env.run()
    assert peak["jobs"] <= 2


def test_chopping_leaves_enter_stream_immediately(toy_db):
    env, hw, ctx = make_context(toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    plan = make_plan(toy_db)
    n_leaves = len(plan.leaves)
    chopper.submit(plan)
    # before any simulation step, all leaves are queued or consumed
    queued = sum(len(store) for store in chopper.ready.values())
    assert queued == n_leaves


def test_parent_scheduled_after_all_children(toy_db):
    env, hw, ctx = make_context(toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    order = []
    from repro.core import chopping as chopping_module

    original = ChoppingExecutor._dispatch

    def tracking_dispatch(self, task):
        order.append(task.op.label)
        return original(self, task)

    ChoppingExecutor._dispatch = tracking_dispatch
    try:
        plan = make_plan(toy_db)
        done = chopper.submit(plan)
        env.run()
        assert done.ok
    finally:
        ChoppingExecutor._dispatch = original
    labels = order
    join_index = next(i for i, l in enumerate(labels) if l.startswith("Join"))
    scan_indices = [i for i, l in enumerate(labels) if l.startswith("Scan")]
    assert all(i < join_index for i in scan_indices)


def test_load_tracker_updated(toy_db):
    env, hw, ctx = make_context(toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    done = chopper.submit(make_plan(toy_db))
    env.run()
    assert done.ok
    # all assigned work finished: outstanding load is zero
    assert ctx.load.estimated_completion("cpu") == pytest.approx(0.0)
    assert ctx.load.estimated_completion("gpu") == pytest.approx(0.0)


def test_data_driven_chopping_keeps_uncached_work_on_cpu(toy_db):
    env, hw, ctx = make_context(toy_db)  # cold cache
    chopper = ChoppingExecutor(ctx, DataDrivenRuntime())
    done = chopper.submit(make_plan(toy_db))
    env.run()
    assert done.ok
    assert hw.metrics.cpu_to_gpu_bytes == 0  # never touched the bus


def test_gpu_heap_clean_after_workload(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    events = [chopper.submit(make_plan(toy_db, name="q{}".format(i)))
              for i in range(4)]
    env.run()
    assert all(e.ok for e in events)
    assert hw.gpu_heap.used == 0


def test_chopping_with_aborts_still_correct(toy_db):
    """Operators that abort on the tiny device still produce correct
    results through the CPU fallback."""
    config = SystemConfig(gpu_memory_bytes=6 * MIB, gpu_cache_bytes=5 * MIB)
    env, hw, ctx = make_context(toy_db, config)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    expected = execute_functional(make_plan(toy_db), toy_db)
    chopper = ChoppingExecutor(ctx, RuntimeHype())
    done = chopper.submit(make_plan(toy_db))
    env.run()
    assert done.value.payload.row_tuples() == expected.payload.row_tuples()


def test_invalid_worker_counts_rejected(toy_db):
    env, hw, ctx = make_context(toy_db)
    with pytest.raises(ValueError):
        ChoppingExecutor(ctx, RuntimeHype(), cpu_workers=0)
    with pytest.raises(ValueError):
        ChoppingExecutor(ctx, RuntimeHype(), gpu_workers=0)
