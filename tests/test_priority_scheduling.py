"""Tests for the PriorityStore and SJF ready-queue scheduling."""

import pytest

from repro.harness import run_workload
from repro.sim import Environment, PriorityStore
from repro.workloads import sql_workload


class TestPriorityStore:
    def test_lowest_priority_first(self):
        env = Environment()
        store = PriorityStore(env)
        store.put("slow", priority=5.0)
        store.put("fast", priority=1.0)
        store.put("medium", priority=3.0)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(consumer())
        env.run()
        assert received == ["fast", "medium", "slow"]

    def test_ties_break_in_insertion_order(self):
        env = Environment()
        store = PriorityStore(env)
        for name in "abc":
            store.put(name, priority=1.0)
        received = []

        def consumer():
            for _ in range(3):
                received.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert received == ["a", "b", "c"]

    def test_blocking_get(self):
        env = Environment()
        store = PriorityStore(env)
        received = []

        def consumer():
            received.append((yield store.get()))

        def producer():
            yield env.timeout(2.0)
            store.put("late", priority=0.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == ["late"]
        assert env.now == 2.0

    def test_items_snapshot_in_delivery_order(self):
        env = Environment()
        store = PriorityStore(env)
        store.put("b", priority=2.0)
        store.put("a", priority=1.0)
        assert store.items == ["a", "b"]
        assert len(store) == 2


class TestSjfChopping:
    QUERIES = {
        "short": "select sum(price) as p from sales where amount < 5",
        "long": (
            "select region, sum(amount * price) as s from sales, store "
            "where skey = id group by region"
        ),
    }

    def test_invalid_scheduling_rejected(self, toy_db):
        queries = sql_workload(toy_db, self.QUERIES)
        with pytest.raises(ValueError):
            run_workload(toy_db, queries, "chopping", scheduling="lifo")

    def test_sjf_results_identical_to_fifo(self, toy_db):
        queries = sql_workload(toy_db, self.QUERIES)
        fifo = run_workload(toy_db, queries, "chopping", users=4,
                            repetitions=4, collect_results=True)
        sjf = run_workload(toy_db, queries, "chopping", users=4,
                           repetitions=4, scheduling="sjf",
                           collect_results=True)
        for name in self.QUERIES:
            assert (fifo.results[name].row_tuples()
                    == sjf.results[name].row_tuples())

    def test_sjf_helps_short_queries_under_load(self, toy_db):
        queries = sql_workload(toy_db, self.QUERIES)
        fifo = run_workload(toy_db, queries, "chopping", users=8,
                            repetitions=8)
        sjf = run_workload(toy_db, queries, "chopping", users=8,
                           repetitions=8, scheduling="sjf")
        # SJF must not hurt the short query's mean latency
        assert (sjf.metrics.mean_latency("short")
                <= fifo.metrics.mean_latency("short") * 1.05)
