"""Tests for database persistence."""

import numpy as np
import pytest

from repro.storage import ColumnType, Database
from repro.storage.compression import compress_database
from repro.storage.io import load_database, save_database


def test_round_trip_small_database(tmp_path, toy_db):
    path = str(tmp_path / "toy.npz")
    save_database(toy_db, path)
    loaded = load_database(path)
    assert loaded.name == toy_db.name
    assert [t.name for t in loaded.tables] == [t.name for t in toy_db.tables]
    for table in toy_db.tables:
        twin = loaded.table(table.name)
        assert twin.nominal_rows == table.nominal_rows
        for column in table.columns:
            loaded_column = twin.column(column.name)
            assert loaded_column.ctype is column.ctype
            assert loaded_column.nominal_rows == column.nominal_rows
            assert np.array_equal(loaded_column.values, column.values)
            assert loaded_column.dictionary == column.dictionary


def test_round_trip_preserves_query_results(tmp_path, ssb_db):
    from repro.engine import Planner, execute_reference
    from repro.engine.execution import execute_functional
    from repro.sql import bind
    from repro.workloads import ssb

    path = str(tmp_path / "ssb.npz")
    save_database(ssb_db, path)
    loaded = load_database(path)
    for name in ("Q1.1", "Q3.3"):
        spec = bind(ssb.QUERIES[name], loaded, name=name)
        plan = Planner(loaded).plan(spec)
        engine_rows = execute_functional(plan, loaded).payload.row_tuples()
        reference_rows = execute_reference(spec, loaded)

        def canonical(rows):
            return sorted(
                tuple(v if isinstance(v, str) else int(v) for v in row)
                for row in rows
            )

        assert canonical(engine_rows) == canonical(reference_rows)


def test_round_trip_preserves_compression(tmp_path, toy_db):
    import copy

    db = copy.deepcopy(toy_db)
    compress_database(db)
    path = str(tmp_path / "compressed.npz")
    save_database(db, path)
    loaded = load_database(path)
    for column in db.columns():
        twin = loaded.column(column.key)
        assert twin.compression == column.compression
        assert twin.nominal_bytes == column.nominal_bytes


def test_missing_file_raises():
    with pytest.raises(FileNotFoundError):
        load_database("/nonexistent/nope.npz")


def test_bad_format_version_rejected(tmp_path, toy_db):
    import json

    import numpy as np

    path = str(tmp_path / "bad.npz")
    manifest = {"format": 999, "name": "x", "tables": []}
    with open(path, "wb") as handle:
        np.savez(handle, __manifest__=np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8))
    with pytest.raises(ValueError):
        load_database(path)


def test_loaded_database_runs_simulated_workloads(tmp_path, toy_db):
    from repro.harness import run_workload
    from repro.workloads import sql_workload

    path = str(tmp_path / "db.npz")
    save_database(toy_db, path)
    loaded = load_database(path)
    queries = sql_workload(loaded, {
        "q": "select sum(amount) as s from sales where price < 25"
    })
    run = run_workload(loaded, queries, "data_driven_chopping",
                       collect_results=True)
    assert run.seconds > 0
    assert len(run.results["q"]) == 1
