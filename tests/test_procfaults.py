"""Process-fault injection, the self-healing MorselPool, and shared-
memory integrity.

Covers the crash-tolerance tentpole end to end:

* deterministic process-fault planning: the schedule (and its digest)
  is a pure function of the seed, and a disabled config plans nothing;
* shm hardening: stale-epoch manifests and corrupted column bytes are
  rejected at attach, dead creators' segments are reaped, and the
  leak registry notices segments that outlive their export;
* the pool survives seeded crash/hang/slowexit/unlink-race chaos with
  byte-identical results, quarantines deterministic poison chunks,
  degrades to sequential at the restart cap, and re-exports after an
  unlink race — all without leaking a segment;
* compensated float sum/avg partials merge byte-identically or the
  query is pinned to the fallback by the runtime identity gate;
* composition (satellite): circuit-breaker half-open probes and the
  PR5 lifecycle (hedging, deadlines) keep byte identity with the
  fused morsel path while a chaos pool runs on the same database.
"""

import dataclasses
import multiprocessing
import os

import numpy as np
import pytest

from repro.engine import kernels, morsel, plan_cache
from repro.engine.execution import LifecycleConfig, execute_functional
from repro.faults import (
    PROCESS_FAULT_CLASSES,
    FaultConfig,
    ProcessFaultDirective,
    ProcessFaultInjector,
)
from repro.harness import experiments as E
from repro.harness.parallel import MorselPool
from repro.harness.runner import run_workload
from repro.metrics import MetricsCollector
from repro.storage import ColumnType, Database, shm
from repro.workloads import ssb
from repro.workloads.base import sql_workload

FORK_OK = "fork" in multiprocessing.get_all_start_methods()

pool_ready = pytest.mark.skipif(
    not (FORK_OK and shm.available()),
    reason="needs fork start method and shared memory",
)


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    plan_cache.enable(False)
    kernels.enable(True)
    morsel.enable(False)
    morsel.reset_stats()
    yield
    plan_cache.enable(True)
    kernels.enable(True)
    morsel.enable(False)
    morsel.set_morsel_rows(None)


def _reference(database, queries):
    return {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }


def _pool_rows(results):
    return {name: result.payload.row_tuples()
            for name, result in results.items()}


# ---------------------------------------------------------------------------
# FaultConfig: the process-fault class
# ---------------------------------------------------------------------------

class TestProcessFaultConfig:
    def test_parse_process_spec(self):
        config = FaultConfig.parse(
            "crash=0.1,hang=0.05,slowexit=0.02,unlinkrace=0.01,"
            "crash_repeats=2,seed=9")
        assert config.crash == 0.1
        assert config.hang == 0.05
        assert config.slowexit == 0.02
        assert config.unlinkrace == 0.01
        assert config.crash_repeats == 2
        assert config.process_enabled

    def test_uniform_process(self):
        config = FaultConfig.uniform_process(0.25, seed=4)
        assert config.process_rates() == {
            name: 0.25 for name in PROCESS_FAULT_CLASSES}
        assert config.process_enabled

    def test_hardware_spec_does_not_enable_process_faults(self):
        config = FaultConfig.uniform(0.3)
        assert not config.process_enabled
        assert all(rate == 0.0 for rate in config.process_rates().values())

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(crash=1.5)
        with pytest.raises(ValueError):
            FaultConfig(crash_repeats=0)
        with pytest.raises(ValueError):
            FaultConfig(hang_seconds=-1.0)


# ---------------------------------------------------------------------------
# ProcessFaultInjector: planned, seeded, digestible
# ---------------------------------------------------------------------------

def _plan_all(injector, queries=("q1", "q2", "q3"), chunks=8):
    plans = []
    for name in queries:
        for index in range(chunks):
            plans.append((name, index, injector.plan_chunk(name, index)))
    return plans


class TestProcessFaultInjector:
    def test_same_seed_same_schedule(self):
        config = FaultConfig(crash=0.2, hang=0.1, slowexit=0.1,
                             unlinkrace=0.1, seed=11)
        a, b = ProcessFaultInjector(config), ProcessFaultInjector(config)
        assert _plan_all(a) == _plan_all(b)
        assert a.schedule_digest() == b.schedule_digest()
        assert a.report() == b.report()
        assert any(directive for _, _, directive in _plan_all(
            ProcessFaultInjector(config)))

    def test_seed_changes_the_schedule(self):
        base = FaultConfig(crash=0.3, hang=0.2, seed=1)
        other = dataclasses.replace(base, seed=2)
        a, b = ProcessFaultInjector(base), ProcessFaultInjector(other)
        _plan_all(a), _plan_all(b)
        assert a.schedule_digest() != b.schedule_digest()

    def test_zero_rate_class_never_fires(self):
        config = FaultConfig(crash=1.0, seed=3)
        injector = ProcessFaultInjector(config)
        plans = _plan_all(injector)
        assert all(d is not None and d.kind == "crash"
                   for _, _, d in plans)
        assert injector.summary() == {"crash": len(plans)}

    def test_crash_directive_carries_repeats(self):
        config = FaultConfig(crash=1.0, crash_repeats=3, seed=5)
        directive = ProcessFaultInjector(config).plan_chunk("q", 0)
        assert directive == ProcessFaultDirective("crash", repeats=3)
        decremented = directive.decremented()
        assert decremented.repeats == 2
        assert directive.repeats == 3  # frozen original untouched


# ---------------------------------------------------------------------------
# shm integrity: headers, checksums, orphans, leaks
# ---------------------------------------------------------------------------

def _tiny_db(name="shmtest"):
    db = Database(name)
    table = db.create_table("t", nominal_rows=64)
    table.add_column("k", ColumnType.INT32, np.arange(64, dtype=np.int32))
    return db


@pytest.mark.skipif(not shm.available(), reason="needs shared memory")
class TestShmIntegrity:
    def test_stale_epoch_manifest_rejected(self):
        db = _tiny_db()
        manifest = shm.export_database(db)
        try:
            stale = dataclasses.replace(manifest, epoch=manifest.epoch + 7)
            with pytest.raises(shm.ShmIntegrityError):
                shm.attach_database(stale)
        finally:
            shm.invalidate(db)

    def test_corrupted_column_bytes_rejected(self):
        db = _tiny_db()
        manifest = shm.export_database(db)
        try:
            spec = manifest.columns[0]
            path = os.path.join("/dev/shm", manifest.shm_name.lstrip("/"))
            before = shm.stats["integrity_failures"]
            with open(path, "r+b") as handle:
                handle.seek(spec.offset)
                handle.write(b"\xff\xff\xff\xff")
            with pytest.raises(shm.ShmIntegrityError):
                shm.attach_database(manifest)
            assert shm.stats["integrity_failures"] == before + 1
        finally:
            shm.invalidate(db)

    def test_clean_attach_verifies_once(self):
        db = _tiny_db()
        manifest = shm.export_database(db)
        try:
            before = shm.stats["verified_columns"]
            attached = shm.attach_database(manifest)
            assert attached.table("t").column("k").values.tolist() == list(
                range(64))
            # second attach of the same (name, epoch) skips verification
            shm.attach_database(manifest)
            assert shm.stats["verified_columns"] == before + len(
                manifest.columns)
        finally:
            shm.detach_all()
            shm.invalidate(db)

    def test_reap_orphans_unlinks_dead_creators(self):
        pid = 99999
        while True:  # find a pid that definitely is not running
            try:
                os.kill(pid, 0)
                pid += 7
            except ProcessLookupError:
                break
            except PermissionError:
                pid += 7
        name = "repro-{}-1-deadbeef".format(pid)
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 64)
        try:
            assert shm.reap_orphans() >= 1
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_reap_skips_live_creators(self):
        db = _tiny_db()
        manifest = shm.export_database(db)
        try:
            shm.reap_orphans()
            assert shm.segment_exists(manifest.shm_name)
        finally:
            shm.invalidate(db)

    def test_leaked_segments_registry(self):
        db = _tiny_db()
        manifest = shm.export_database(db)
        assert shm.leaked_segments() == []  # live exports are not leaks
        shm.invalidate(db)
        assert shm.leaked_segments() == []
        assert not shm.segment_exists(manifest.shm_name)


# ---------------------------------------------------------------------------
# MorselPool: chaos soak, quarantine, degrade, determinism
# ---------------------------------------------------------------------------

CHAOS = FaultConfig(crash=0.15, hang=0.08, slowexit=0.05, unlinkrace=0.05,
                    hang_seconds=5.0, seed=2)


@pool_ready
class TestPoolSelfHealing:
    def test_zero_overhead_when_disabled(self, ssb_db):
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        with MorselPool(ssb_db, queries, jobs=2) as pool:
            rows = _pool_rows(pool.run_queries())
            assert rows == reference
            assert pool.process_fault_digest is None
            assert pool.process_fault_summary() == {}
            assert pool.fallbacks == 0
            for key in ("worker_crashes", "worker_hangs", "chunk_requeues",
                        "chunk_quarantines", "pool_degrades"):
                assert pool.counters[key] == 0

    def test_chaos_soak_identical_and_self_healing(self, ssb_db):
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        with MorselPool(ssb_db, queries, jobs=2, faults=CHAOS,
                        heartbeat_seconds=0.4) as pool:
            pool.warm()
            rows = _pool_rows(pool.run_queries())
            summary = pool.process_fault_summary()
            assert rows == reference
            assert summary  # the seed planned real chaos
            assert pool.fallbacks == 0
            assert pool.degraded is None
            assert pool.counters["worker_crashes"] >= (
                summary.get("crash", 0) + summary.get("unlinkrace", 0))
            assert pool.counters["worker_hangs"] == summary.get("hang", 0)
            assert pool.counters["chunk_requeues"] >= (
                summary.get("crash", 0) + summary.get("hang", 0))
            if summary.get("unlinkrace"):
                assert pool.counters["shm_reexports"] >= 1
            assert pool.counters["worker_restarts"] >= 1
        assert shm.leaked_segments() == []

    def test_chaos_schedule_is_deterministic(self, ssb_db):
        queries = ssb.workload(ssb_db)

        def soak():
            with MorselPool(ssb_db, queries, jobs=2, faults=CHAOS,
                            heartbeat_seconds=0.4) as pool:
                rows = _pool_rows(pool.run_queries())
                return (rows, pool.process_fault_digest,
                        pool.process_fault_report())

        rows_a, digest_a, report_a = soak()
        rows_b, digest_b, report_b = soak()
        assert digest_a == digest_b
        assert report_a == report_b
        assert rows_a == rows_b

    def test_repeat_crasher_is_quarantined(self, ssb_db):
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        faults = FaultConfig(crash=0.2, crash_repeats=2, seed=3)
        with MorselPool(ssb_db, queries, jobs=2, faults=faults) as pool:
            rows = _pool_rows(pool.run_queries())
            summary = pool.process_fault_summary()
            assert summary.get("crash", 0) >= 1
            assert rows == reference
            assert pool.counters["chunk_quarantines"] == summary["crash"]
            assert pool.fallbacks == 0

    def test_restart_cap_degrades_to_sequential(self, ssb_db):
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        faults = FaultConfig(crash=0.6, seed=1)
        with MorselPool(ssb_db, queries, jobs=2, faults=faults,
                        max_restarts=1) as pool:
            rows = _pool_rows(pool.run_queries())
            assert rows == reference
            assert pool.degraded == "restart_cap"
            assert pool.counters["pool_degrades"] == 1
            assert pool.counters["degraded_chunks"] > 0
            assert pool.fallbacks == 0

    def test_unlink_race_triggers_reexport(self, ssb_db):
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        faults = FaultConfig(unlinkrace=0.25, seed=10)
        with MorselPool(ssb_db, queries, jobs=2, faults=faults) as pool:
            rows = _pool_rows(pool.run_queries())
            summary = pool.process_fault_summary()
            assert summary.get("unlinkrace", 0) >= 1
            assert rows == reference
            assert pool.counters["shm_reexports"] >= 1
            assert pool.counters["worker_init_failures"] >= 1
        assert shm.leaked_segments() == []

    def test_pool_counters_land_in_metrics(self, ssb_db):
        queries = ssb.workload(ssb_db)
        with MorselPool(ssb_db, queries, jobs=2, faults=CHAOS,
                        heartbeat_seconds=0.4) as pool:
            pool.run_queries()
            metrics = MetricsCollector()
            pool.record_metrics(metrics)
            summary = metrics.pool_summary()
            assert summary["worker_restarts"] == float(
                pool.counters["worker_restarts"])
            assert summary["process_faults_planned"] == float(
                sum(pool.process_fault_summary().values()))
            assert metrics.process_fault_digest == pool.process_fault_digest


# ---------------------------------------------------------------------------
# Compensated float partials: byte identity or pinned fallback
# ---------------------------------------------------------------------------

def _float_db(values, name="floats"):
    values = np.asarray(values, dtype=np.float64)
    db = Database(name)
    table = db.create_table("sales", nominal_rows=len(values))
    table.add_column("skey", ColumnType.INT32,
                     np.ones(len(values), dtype=np.int32))
    table.add_column("amount", ColumnType.FLOAT64, values)
    return db


FLOAT_SQL = "select skey, sum(amount), avg(amount) from sales group by skey"


class TestCompensatedFloats:
    def test_sequential_fused_float_sum_is_identical(self):
        rng = np.random.default_rng(17)
        db = _float_db(rng.normal(size=4096) * 1e6)
        queries = sql_workload(db, [("f1", FLOAT_SQL)])
        reference = _reference(db, queries)
        with morsel.active(512):
            fused = _reference(db, queries)
        assert fused == reference
        assert morsel.snapshot_stats()["fused_queries"] == 1
        assert morsel.decline_reasons.get("float_partial_divergence", 0) == 0

    @pool_ready
    def test_pool_float_merge_passes_gate_on_exact_values(self):
        # integer-valued floats: every partial order sums exactly
        db = _float_db(np.arange(1, 2049, dtype=np.float64))
        queries = sql_workload(db, [("f1", FLOAT_SQL)])
        reference = _reference(db, queries)
        morsel.set_morsel_rows(256)
        with MorselPool(db, queries, workload="sql", jobs=2) as pool:
            rows = _pool_rows(pool.run_queries())
            assert rows == reference
            assert pool.counters["float_gate_declines"] == 0
            assert pool.fallbacks == 0

    @pool_ready
    def test_pool_float_divergence_pins_query_to_fallback(self):
        # chunk-order merge rounds differently from the one-pass
        # reference: the gate must catch it and return the reference
        db = _float_db([1e16, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1e16])
        queries = sql_workload(db, [("f1", FLOAT_SQL)])
        reference = _reference(db, queries)
        morsel.set_morsel_rows(4)
        with MorselPool(db, queries, workload="sql", jobs=2) as pool:
            first = pool.run_query("f1").payload.row_tuples()
            assert first == reference["f1"]
            if pool.counters["float_gate_declines"]:
                assert morsel.decline_reasons[
                    "float_partial_divergence"] >= 1
                before = pool.fallbacks
                again = pool.run_query("f1").payload.row_tuples()
                assert again == reference["f1"]
                assert pool.fallbacks == before + 1  # pinned


# ---------------------------------------------------------------------------
# Composition: breakers, lifecycle, and chaos pools together (satellite)
# ---------------------------------------------------------------------------

def _sim_run(db, config, **kwargs):
    plan_cache.invalidate(db)
    run = run_workload(db, ssb.workload(db), "chopping", config=config,
                       users=2, repetitions=1, collect_results=True,
                       **kwargs)
    rows = {name: tuple(table.row_tuples())
            for name, table in run.results.items()}
    return run, rows


class TestFaultLayerComposition:
    def test_breaker_half_open_probes_with_morsels(self):
        db = E.ssb_database(1)
        spec = FaultConfig.uniform(0.5, seed=3, breaker_threshold=2,
                                   breaker_open_seconds=0.01)
        base_run, base_rows = _sim_run(db, E.FULL_CONFIG, faults=spec)
        fused_run, fused_rows = _sim_run(
            db, E.FULL_CONFIG.with_morsels(True), faults=spec)
        assert fused_rows == base_rows
        assert fused_run.fault_digest == base_run.fault_digest
        assert fused_run.seconds == base_run.seconds
        transitions = fused_run.metrics.breaker_transition_counts()
        assert transitions.get("half_open", 0) > 0  # probes really ran

    def test_hedging_and_deadlines_with_morsels(self):
        db = E.ssb_database(1)
        spec = FaultConfig.parse("stall=0.4,seed=7")
        lifecycle = LifecycleConfig(hedge_factor=1.5, max_inflight=2)
        base_run, base_rows = _sim_run(db, E.FULL_CONFIG, faults=spec,
                                       lifecycle=lifecycle)
        fused_run, fused_rows = _sim_run(
            db, E.FULL_CONFIG.with_morsels(True), faults=spec,
            lifecycle=lifecycle)
        assert fused_rows == base_rows
        assert fused_run.seconds == base_run.seconds
        assert fused_run.metrics.hedges_started > 0
        assert fused_run.metrics.hedges_started == (
            base_run.metrics.hedges_started)

    @pool_ready
    def test_simulation_unaffected_by_live_chaos_pool(self, ssb_db):
        """A chaos pool churning real processes on the same database
        must not perturb the simulated fault/lifecycle layers."""
        db = E.ssb_database(1)
        spec = FaultConfig.uniform(0.05, seed=7)
        base_run, base_rows = _sim_run(db, E.FULL_CONFIG, faults=spec)
        queries = ssb.workload(ssb_db)
        reference = _reference(ssb_db, queries)
        with MorselPool(ssb_db, queries, jobs=2, faults=CHAOS,
                        heartbeat_seconds=0.4) as pool:
            pool.warm()
            rows = _pool_rows(pool.run_queries())
            run, sim_rows = _sim_run(db, E.FULL_CONFIG.with_morsels(True),
                                     faults=spec)
            assert rows == reference
            assert pool.fallbacks == 0
        assert sim_rows == base_rows
        assert run.fault_digest == base_run.fault_digest
        assert run.seconds == base_run.seconds
        assert shm.leaked_segments() == []
