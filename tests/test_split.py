"""Intra-operator co-processing: morsel-grained CPU/GPU split execution.

Covers the split tentpole end to end:

* the chunk-merge substrate yields byte-identical results for any cut
  ratio and any rebalance schedule (fixed sweep + hypothesis);
* DES runs with split enabled validate against the reference across
  ratio overrides and round counts, and compose with fault injection
  (breaker opens mid-split) and cancellation (both halves roll back);
* the ratio comes from the HyPE split-cost model, shifts toward the
  GPU on the coupled-platform preset, and feeds per-device realized
  throughput back into the observation store;
* ``Limit``-rooted plans fuse with cross-chunk early termination
  behind the same identity gate;
* the load tracker re-snapshots breaker penalties on ``refresh()``;
* metrics/CLI surface the split summary; disabled runs pay nothing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import get_strategy
from repro.core.placement import STRATEGY_NAMES, SplitHype
from repro.engine import morsel, plan_cache
from repro.engine.execution import QueryContext, execute_functional
from repro.engine.execution.split import (
    SPLIT_KINDS,
    SplitState,
    merged_split_result,
)
from repro.harness.runner import run_workload
from repro.hardware import SystemConfig
from repro.hype.load import LoadTracker
from repro.hype.models import SplitCostModel
from repro.metrics import MetricsCollector
from repro.workloads import ssb, sql_workload

from tests.conftest import make_context


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    """Plan cache off (every execution must re-run), fused path off
    unless a test turns it on — same discipline as the morsel tests."""
    plan_cache.enable(False)
    morsel.enable(False)
    morsel.reset_stats()
    yield
    plan_cache.enable(True)
    morsel.enable(False)
    morsel.set_morsel_rows(None)


def _signature(result):
    return (result.payload.row_tuples(), result.actual_rows,
            result.nominal_rows, result.row_width_bytes)


def _split_pipes(database):
    """(query, reference, pipe) for every SSB query whose fused
    pipeline supports partial merging."""
    out = []
    for query in ssb.workload(database):
        reference = execute_functional(query.instantiate(), database)
        try:
            pipe = morsel.build(query.instantiate(), database)
        except morsel.Decline:
            continue
        if pipe.supports_partials:
            out.append((query, reference, pipe))
    return out


# ---------------------------------------------------------------------------
# Chunk-merge identity: any ratio, any schedule
# ---------------------------------------------------------------------------

def test_merged_split_identity_every_ratio(ssb_db):
    gated = _split_pipes(ssb_db)
    assert gated  # the SSB suite must offer splittable plans
    for _, reference, pipe in gated:
        rows = pipe.fact_rows
        for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
            merged = merged_split_result(pipe, [int(rows * ratio)])
            assert _signature(merged) == _signature(reference)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_merged_split_identity_any_schedule(ssb_db, data):
    """Any rebalance schedule — arbitrary, unordered, duplicated, or
    out-of-range cut points — merges byte-identically."""
    gated = _split_pipes(ssb_db)
    _, reference, pipe = data.draw(st.sampled_from(gated))
    rows = pipe.fact_rows
    boundaries = data.draw(
        st.lists(st.integers(min_value=-5, max_value=rows + 5), max_size=6))
    merged = merged_split_result(pipe, boundaries)
    assert _signature(merged) == _signature(reference)


def test_gate_accepts_ssb_suite(ssb_db):
    """Every SSB query passes the warm-up identity gate."""
    metrics = MetricsCollector()
    state = SplitState(SystemConfig(split=True), None)
    state.prepare(ssb_db, ssb.workload(ssb_db), metrics=metrics)
    assert state.ungated == set()
    assert len(state.splittable) == len(ssb.QUERIES)
    assert sum(metrics.split_declines.values()) == 0


# ---------------------------------------------------------------------------
# DES execution: validated runs across ratios, rounds, strategies
# ---------------------------------------------------------------------------

def _run_split(db, config, **kwargs):
    kwargs.setdefault("strategy", "runtime")
    strategy = kwargs.pop("strategy")
    kwargs.setdefault("validate", True)
    return run_workload(db, ssb.workload(db), strategy,
                        config=config, **kwargs)


@pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75, 1.0])
def test_split_ratio_override_validates(ssb_db, ratio):
    run = _run_split(ssb_db, SystemConfig(split=True, split_ratio=ratio))
    assert run.metrics.split_operators > 0
    summary = run.metrics.split_summary()
    assert summary["split_mean_chosen_ratio"] == pytest.approx(ratio)
    assert 0.0 <= summary["split_mean_realized_ratio"] <= 1.0


@pytest.mark.parametrize("rounds", [1, 2, 7])
def test_split_rounds_validate(ssb_db, rounds):
    run = _run_split(ssb_db,
                     SystemConfig(split=True, split_rounds=rounds))
    assert run.metrics.split_operators > 0


def test_split_adaptive_ratio_validates_and_rebalances(ssb_db):
    run = _run_split(ssb_db, SystemConfig(split=True), repetitions=2)
    summary = run.metrics.split_summary()
    assert summary["split_operators"] > 0
    assert 0.0 < summary["split_mean_chosen_ratio"] < 1.0
    # the adaptive path must actually exercise mid-operator rebalancing
    assert summary["split_rebalances"] > 0


def test_split_strategy_registered_and_runs(ssb_db):
    assert "split" in STRATEGY_NAMES
    assert isinstance(get_strategy("split"), SplitHype)
    run = _run_split(ssb_db, SystemConfig(split=True), strategy="split")
    assert run.metrics.split_operators > 0


def test_split_vectorized_model_validates(ssb_db):
    run = _run_split(ssb_db, SystemConfig(split=True),
                     processing_model="vectorized")
    assert run.seconds > 0


# ---------------------------------------------------------------------------
# Zero overhead when disabled / declined
# ---------------------------------------------------------------------------

def test_split_summary_all_zero_when_disabled(ssb_db):
    run = _run_split(ssb_db, SystemConfig(), validate=False)
    summary = run.metrics.split_summary()
    assert all(value == 0 for value in summary.values())


def test_declined_split_changes_nothing(ssb_db):
    """split_ratio=0 declines every operator at the ratio floor before
    any simulated time passes — the makespan must match the pure run
    exactly."""
    pure = _run_split(ssb_db, SystemConfig(), validate=False)
    declined = _run_split(ssb_db,
                          SystemConfig(split=True, split_ratio=0.0),
                          validate=False)
    assert declined.metrics.split_operators == 0
    assert declined.metrics.split_declines["ratio_floor"] > 0
    assert declined.seconds == pure.seconds


# ---------------------------------------------------------------------------
# Composition: faults (PR3) and cancellation / deadlines (PR5)
# ---------------------------------------------------------------------------

def test_split_composes_with_faults(ssb_db):
    """Kernel faults mid-split degrade the operator to pure CPU (the
    round's GPU share is wasted work) and still validate."""
    run = _run_split(ssb_db, SystemConfig(split=True),
                     faults="kernel=0.6,seed=11", repetitions=2)
    assert run.faults_injected > 0
    assert run.metrics.split_degrades > 0
    assert run.metrics.split_wasted_seconds > 0


def test_split_declines_when_breaker_open(ssb_db):
    """With the breaker certain to open, later split attempts decline
    up front instead of feeding work to a dead device.  (Cost-based
    strategies route around the device entirely; gpu_only keeps
    dispatching to it, so the decline path is what protects the run.)"""
    run = _run_split(ssb_db, SystemConfig(split=True),
                     faults="kernel=1.0,seed=3", repetitions=2,
                     strategy="gpu_only")
    assert run.metrics.split_declines["breaker_open"] > 0
    assert run.metrics.split_degrades > 0


def _manual_split(db, config, deadline_seconds=None):
    """Drive one try_split as a raw DES process; returns
    (env, ctx, device, process, qctx)."""
    env, hardware, ctx = make_context(db, config)
    state = SplitState(config, ctx.cost_model)
    queries = ssb.workload(db)[:1]
    state.prepare(db, queries)
    ctx.split = state
    plan = queries[0].instantiate()

    def produce(op):
        return op.produce(db, [produce(c) for c in op.children])

    target = next(op for op in plan.operators
                  if op.kind in SPLIT_KINDS
                  and not op.cpu_only and op.children)
    children = [produce(c) for c in target.children]
    input_bytes = target.input_nominal_bytes(db, children)
    device = hardware.device("gpu")
    qctx = QueryContext(env, queries[0].name, metrics=ctx.metrics,
                        deadline_seconds=deadline_seconds)
    process = env.process(state.try_split(
        ctx, device, target, children, input_bytes, qctx))
    process.defused = True
    qctx.register(process)
    return env, ctx, device, process, qctx


SPLIT_HALF = dict(split=True, split_ratio=0.5, split_rounds=4)


def test_manual_split_completes_and_observes(ssb_db):
    env, ctx, device, process, _ = _manual_split(
        ssb_db, SystemConfig(**SPLIT_HALF))
    env.run()
    assert env.now > 0
    result = process.value
    assert result is not None and result.location == "cpu"
    # both halves released their device memory
    assert device.heap.used == 0
    assert not device.heap.live_allocations
    assert ctx.metrics.split_operators == 1


def test_split_observations_tagged(ssb_db):
    env, ctx, device, process, _ = _manual_split(
        ssb_db, SystemConfig(**SPLIT_HALF))
    env.run()
    tagged = [
        obs
        for key in ctx.cost_model.store.keys()
        for obs in ctx.cost_model.store.get(*key)
        if obs.source == "split"
    ]
    # one CPU + one GPU share observation for the single split operator
    assert len(tagged) == 2


def test_cancellation_rolls_back_both_halves(ssb_db):
    # measure the uncancelled duration first, then cancel halfway
    env, _, _, _, _ = _manual_split(ssb_db, SystemConfig(**SPLIT_HALF))
    env.run()
    duration = env.now
    assert duration > 0

    env, ctx, device, process, qctx = _manual_split(
        ssb_db, SystemConfig(**SPLIT_HALF))

    def canceller():
        yield env.timeout(duration / 2)
        qctx.cancel("test")

    env.process(canceller())
    env.run()
    assert qctx.cancelled
    assert not process.ok
    # the rollback freed every staged and working allocation
    assert device.heap.used == 0
    assert not device.heap.live_allocations
    assert ctx.metrics.split_operators == 0


def test_deadline_pressure_degrades_to_cpu(ssb_db):
    env, _, _, _, _ = _manual_split(ssb_db, SystemConfig(**SPLIT_HALF))
    env.run()
    duration = env.now

    # a deadline the split cannot safely meet: degrade at the first
    # round boundary, finish pure-CPU, never cancel
    env, ctx, device, process, qctx = _manual_split(
        ssb_db, SystemConfig(**SPLIT_HALF),
        deadline_seconds=duration * 0.6)
    env.run()
    assert process.value is not None
    assert ctx.metrics.split_operators == 1
    assert ctx.metrics.split_degrades == 1
    assert device.heap.used == 0


# ---------------------------------------------------------------------------
# Coupled-platform preset: the ratio shifts toward the GPU
# ---------------------------------------------------------------------------

def test_coupled_preset_fields():
    config = SystemConfig.coupled_gpu()
    assert config.coupled and config.split
    pcie = SystemConfig()
    assert (config.pcie_bandwidth_bytes_per_second
            > pcie.pcie_bandwidth_bytes_per_second)
    override = SystemConfig.coupled_gpu(split_rounds=2)
    assert override.split_rounds == 2 and override.coupled


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(split_ratio=1.5)
    with pytest.raises(ValueError):
        SystemConfig(split_rounds=0)
    toggled = SystemConfig().with_split(True, split_ratio=0.5)
    assert toggled.split and toggled.split_ratio == 0.5


def test_coupled_ratio_shifts_toward_gpu(ssb_db):
    """arXiv 1307.1955's headline effect: with the PCIe transfer term
    gone, the split-cost model assigns the GPU a larger share."""
    pcie = _run_split(ssb_db, SystemConfig(split=True), validate=False)
    coupled = _run_split(ssb_db, SystemConfig.coupled_gpu(),
                         validate=False)
    assert pcie.metrics.split_operators > 0
    assert coupled.metrics.split_operators > 0
    assert (coupled.metrics.split_summary()["split_mean_chosen_ratio"]
            > pcie.metrics.split_summary()["split_mean_chosen_ratio"])


# ---------------------------------------------------------------------------
# Split cost model + load tracker units
# ---------------------------------------------------------------------------

def test_split_cost_model_balance():
    model = SplitCostModel(None)
    assert model.balance(0.0, 0.0, 0.0) == 0.5
    assert model.balance(1.0, 1.0, 0.0) == 0.5
    # transfer cost shrinks the GPU share
    assert model.balance(1.0, 1.0, 2.0) == 0.25
    # a fast GPU earns a larger share
    assert model.balance(3.0, 1.0, 0.0) == 0.75


def test_split_cost_model_rebalance():
    model = SplitCostModel(None)
    inf = float("inf")
    assert model.rebalance(0.0, 0.7, 1.0, 1.0, 0.0, 0.0, 0.0) == 0.7
    # an unavailable (open-breaker) device gets nothing
    assert model.rebalance(0.5, 0.7, 1.0, 1.0, 0.0, 0.0, inf) == 0.0
    assert model.rebalance(0.5, 0.7, 1.0, 1.0, 0.0, inf, 0.0) == 1.0
    # balanced devices, no queues: keep an even division
    even = model.rebalance(0.5, 0.5, 1.0, 1.0, 0.0, 0.0, 0.0)
    assert even == pytest.approx(0.5)
    # a loaded CPU pushes work to the GPU
    loaded = model.rebalance(0.5, 0.5, 1.0, 1.0, 0.0, 1.0, 0.0)
    assert loaded > even


class _StubResilience:
    enabled = True

    def __init__(self):
        self.penalty = 0.0

    def placement_penalty(self, name, now):
        return self.penalty


def test_load_tracker_refresh_resnapshots():
    tracker = LoadTracker()
    resilience = _StubResilience()
    tracker.attach_resilience(resilience, clock=lambda: 0.0)
    tracker.assign("gpu", 1.0)
    assert tracker.estimated_completion("gpu") == 1.0
    # the breaker opens, but the snapshot is stale until refresh()
    resilience.penalty = float("inf")
    assert tracker.estimated_completion("gpu") == 1.0
    tracker.refresh("gpu")
    assert tracker.estimated_completion("gpu") == float("inf")
    # it closes again; a no-argument refresh re-reads all known names
    resilience.penalty = 0.0
    tracker.refresh()
    assert tracker.estimated_completion("gpu") == 1.0
    tracker.reset()
    assert tracker.estimated_completion("gpu") == 0.0


# ---------------------------------------------------------------------------
# Limit fusion: cross-chunk early termination
# ---------------------------------------------------------------------------

LIMIT_SQL = ("select lo_orderkey, lo_quantity from lineorder "
             "where lo_discount >= 5 limit 50")


def _run_sql(db, sql):
    (query,) = sql_workload(db, {"q": sql})
    return execute_functional(query.instantiate(), db)


@pytest.mark.parametrize("rows_per_morsel", [100, 1000, 1_000_000_000])
def test_limit_fused_identity(ssb_db, rows_per_morsel):
    reference = _run_sql(ssb_db, LIMIT_SQL)
    with morsel.active(rows_per_morsel):
        fused = _run_sql(ssb_db, LIMIT_SQL)
    assert _signature(fused) == _signature(reference)
    stats = morsel.snapshot_stats()
    assert stats["limit_fused_queries"] == 1


def test_limit_early_stop_skips_morsels(ssb_db):
    with morsel.active(100):
        _run_sql(ssb_db, LIMIT_SQL)
    stats = morsel.snapshot_stats()
    assert stats["limit_early_stops"] == 1
    assert stats["limit_rows_skipped"] > 0


def test_limit_no_early_stop_with_one_chunk(ssb_db):
    with morsel.active(1_000_000_000):
        _run_sql(ssb_db, LIMIT_SQL)
    stats = morsel.snapshot_stats()
    assert stats["limit_fused_queries"] == 1
    assert stats["limit_early_stops"] == 0
    assert stats["limit_rows_skipped"] == 0


def test_limit_over_sort_declines_but_matches(ssb_db):
    sql = ("select lo_orderkey from lineorder where lo_discount >= 5 "
           "order by lo_orderkey limit 10")
    reference = _run_sql(ssb_db, sql)
    with morsel.active(100):
        fused = _run_sql(ssb_db, sql)
    assert _signature(fused) == _signature(reference)
    stats = morsel.snapshot_stats()
    assert stats["limit_fused_queries"] == 0
    assert morsel.decline_reasons.get("limit_tail", 0) >= 1


def test_limit_never_memoises_prefix(ssb_db):
    """An early-stopped run must not poison shared-chain memos: the
    same scan re-run without the limit yields the full result."""
    no_limit = LIMIT_SQL.rsplit(" limit", 1)[0]
    full_reference = _run_sql(ssb_db, no_limit)
    plan_cache.enable(True)
    try:
        with morsel.active(100):
            limited = _run_sql(ssb_db, LIMIT_SQL)
            full = _run_sql(ssb_db, no_limit)
        assert limited.actual_rows == 50
        assert _signature(full) == _signature(full_reference)
    finally:
        plan_cache.invalidate(ssb_db)
        plan_cache.enable(False)


# ---------------------------------------------------------------------------
# Metrics + CLI surface
# ---------------------------------------------------------------------------

def test_metrics_split_summary():
    metrics = MetricsCollector()
    summary = metrics.split_summary()
    assert summary["split_operators"] == 0
    assert summary["split_mean_chosen_ratio"] == 0
    metrics.record_split(chosen_ratio=0.6, realized_ratio=0.4,
                         rebalances=2, gpu_seconds=1.0, cpu_seconds=2.0)
    metrics.record_split(chosen_ratio=0.2, realized_ratio=0.0,
                         rebalances=0, gpu_seconds=0.0, cpu_seconds=3.0,
                         degraded=True)
    metrics.record_split_decline("ratio_floor")
    metrics.record_split_wasted(0.25)
    summary = metrics.split_summary()
    assert summary["split_operators"] == 2
    assert summary["split_mean_chosen_ratio"] == pytest.approx(0.4)
    assert summary["split_mean_realized_ratio"] == pytest.approx(0.2)
    assert summary["split_rebalances"] == 2
    assert summary["split_degrades"] == 1
    assert summary["split_declines"] == 1
    assert summary["split_gpu_seconds"] == pytest.approx(1.0)
    assert summary["split_cpu_seconds"] == pytest.approx(5.0)
    assert summary["split_wasted_seconds"] == pytest.approx(0.25)


def test_metrics_hedge_wasted():
    metrics = MetricsCollector()
    assert metrics.lifecycle_summary()["hedge_wasted_seconds"] == 0.0
    metrics.record_hedge_wasted(0.5)
    metrics.record_hedge_wasted(0.25)
    assert metrics.lifecycle_summary()["hedge_wasted_seconds"] == (
        pytest.approx(0.75))


def test_cli_split_report(capsys):
    code = main([
        "run", "--scale-factor", "1", "--repetitions", "1",
        "--strategy", "runtime", "--split",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "split execution" in out
    assert "split_operators" in out


def test_cli_coupled_implies_split(capsys):
    code = main([
        "run", "--scale-factor", "1", "--repetitions", "1",
        "--strategy", "runtime", "--coupled", "--split-rounds", "2",
    ])
    assert code == 0
    assert "split execution" in capsys.readouterr().out
