"""Unit tests for the data-placement manager (Algorithm 1)."""

import numpy as np
import pytest

from tests.conftest import make_context
from repro.core import DataPlacementManager
from repro.hardware import DeviceCache, PCIeBus, SystemConfig
from repro.sim import Environment
from repro.storage import ColumnType, Database


@pytest.fixture()
def stats_db():
    """Five equally sized columns with distinct access counts."""
    db = Database("stats")
    table = db.create_table("t", nominal_rows=100)
    for i, name in enumerate(["c0", "c1", "c2", "c3", "c4"]):
        table.add_column(name, ColumnType.INT32,
                         np.arange(10, dtype=np.int32))
        for _ in range(i + 1):  # c4 is hottest
            db.statistics.record_access("t.{}".format(name), now=float(i))
    return db


def column_bytes(db):
    return db.column("t.c0").nominal_bytes  # 400 bytes each


def test_algorithm1_caches_most_frequent_prefix(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert cached == ["t.c3", "t.c4"]


def test_algorithm1_respects_budget_exactly(stats_db):
    nbytes = column_bytes(stats_db)
    cache = DeviceCache(3 * nbytes + nbytes // 2)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert len(cached) == 3
    assert cache.used <= cache.capacity


def test_cached_columns_are_pinned(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    for key in cache.keys:
        assert cache.entry(key).pinned


def test_placement_update_evicts_stale_entries(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    # shift the workload: c0 becomes the hottest column
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    cached = manager.apply_placement()
    assert "t.c0" in cached
    assert "t.c3" not in cached


def test_in_use_entries_deferred_not_evicted(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    cache.acquire("t.c4")  # a running operator holds the column
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    cached = manager.apply_placement()
    # c4 is due for eviction but in use: deferred cleanup keeps it
    assert "t.c4" in cached


def test_lru_policy_uses_recency(stats_db):
    # recency in the fixture: c4 most recent (now=4.0)
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lru")
    cached = manager.apply_placement()
    assert cached == ["t.c3", "t.c4"]


def test_unknown_policy_rejected(stats_db):
    with pytest.raises(ValueError):
        DataPlacementManager(stats_db, DeviceCache(100), policy="mru")


def test_untouched_columns_never_cached(stats_db):
    table = stats_db.table("t")
    table.add_column("cold", ColumnType.INT32, np.arange(10, dtype=np.int32))
    cache = DeviceCache(100 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert "t.cold" not in cached


def test_online_place_charges_transfers(stats_db):
    from repro.metrics import MetricsCollector

    env = Environment()
    metrics = MetricsCollector()
    bus = PCIeBus(env, bandwidth_bytes_per_second=1000.0, metrics=metrics)
    cache = DeviceCache(2 * column_bytes(stats_db), clock=lambda: env.now)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")

    env.process(manager.place(bus))
    env.run()
    assert metrics.cpu_to_gpu_bytes == 2 * column_bytes(stats_db)
    assert env.now > 0


def test_background_job_repeats(stats_db):
    env = Environment()
    bus = PCIeBus(env, bandwidth_bytes_per_second=1e12)
    cache = DeviceCache(2 * column_bytes(stats_db), clock=lambda: env.now)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    env.process(manager.background_job(bus, interval_seconds=1.0))
    env.run(until=2.5)
    assert len(cache.keys) == 2
    # workload shift is picked up on the next period
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    env.run(until=3.5)
    assert "t.c0" in cache


def test_stale_statistics_for_dropped_columns_ignored(stats_db):
    stats_db.statistics.record_access("t.ghost_column")
    cache = DeviceCache(10 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()  # must not raise
    assert "t.ghost_column" not in cached
