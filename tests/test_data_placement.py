"""Unit tests for the data-placement manager (Algorithm 1)."""

import numpy as np
import pytest

from tests.conftest import make_context
from repro.core import DataPlacementManager
from repro.hardware import DeviceCache, PCIeBus, SystemConfig
from repro.sim import Environment
from repro.storage import ColumnType, Database


@pytest.fixture()
def stats_db():
    """Five equally sized columns with distinct access counts."""
    db = Database("stats")
    table = db.create_table("t", nominal_rows=100)
    for i, name in enumerate(["c0", "c1", "c2", "c3", "c4"]):
        table.add_column(name, ColumnType.INT32,
                         np.arange(10, dtype=np.int32))
        for _ in range(i + 1):  # c4 is hottest
            db.statistics.record_access("t.{}".format(name), now=float(i))
    return db


def column_bytes(db):
    return db.column("t.c0").nominal_bytes  # 400 bytes each


def test_algorithm1_caches_most_frequent_prefix(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert cached == ["t.c3", "t.c4"]


def test_algorithm1_respects_budget_exactly(stats_db):
    nbytes = column_bytes(stats_db)
    cache = DeviceCache(3 * nbytes + nbytes // 2)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert len(cached) == 3
    assert cache.used <= cache.capacity


def test_cached_columns_are_pinned(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    for key in cache.keys:
        assert cache.entry(key).pinned


def test_placement_update_evicts_stale_entries(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    # shift the workload: c0 becomes the hottest column
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    cached = manager.apply_placement()
    assert "t.c0" in cached
    assert "t.c3" not in cached


def test_in_use_entries_deferred_not_evicted(stats_db):
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    manager.apply_placement()
    cache.acquire("t.c4")  # a running operator holds the column
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    cached = manager.apply_placement()
    # c4 is due for eviction but in use: deferred cleanup keeps it
    assert "t.c4" in cached


def test_lru_policy_uses_recency(stats_db):
    # recency in the fixture: c4 most recent (now=4.0)
    cache = DeviceCache(2 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lru")
    cached = manager.apply_placement()
    assert cached == ["t.c3", "t.c4"]


def test_unknown_policy_rejected(stats_db):
    with pytest.raises(ValueError):
        DataPlacementManager(stats_db, DeviceCache(100), policy="mru")


def test_untouched_columns_never_cached(stats_db):
    table = stats_db.table("t")
    table.add_column("cold", ColumnType.INT32, np.arange(10, dtype=np.int32))
    cache = DeviceCache(100 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()
    assert "t.cold" not in cached


def test_online_place_charges_transfers(stats_db):
    from repro.metrics import MetricsCollector

    env = Environment()
    metrics = MetricsCollector()
    bus = PCIeBus(env, bandwidth_bytes_per_second=1000.0, metrics=metrics)
    cache = DeviceCache(2 * column_bytes(stats_db), clock=lambda: env.now)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")

    env.process(manager.place(bus))
    env.run()
    assert metrics.cpu_to_gpu_bytes == 2 * column_bytes(stats_db)
    assert env.now > 0


def test_background_job_repeats(stats_db):
    env = Environment()
    bus = PCIeBus(env, bandwidth_bytes_per_second=1e12)
    cache = DeviceCache(2 * column_bytes(stats_db), clock=lambda: env.now)
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    env.process(manager.background_job(bus, interval_seconds=1.0))
    env.run(until=2.5)
    assert len(cache.keys) == 2
    # workload shift is picked up on the next period
    for _ in range(50):
        stats_db.statistics.record_access("t.c0", now=100.0)
    env.run(until=3.5)
    assert "t.c0" in cache


def test_stale_statistics_for_dropped_columns_ignored(stats_db):
    stats_db.statistics.record_access("t.ghost_column")
    cache = DeviceCache(10 * column_bytes(stats_db))
    manager = DataPlacementManager(stats_db, cache, policy="lfu")
    cached = manager.apply_placement()  # must not raise
    assert "t.ghost_column" not in cached


# -- multi-GPU partitioning (Sec. 6.3) --------------------------------------


def two_caches(stats_db, columns_each=3):
    nbytes = column_bytes(stats_db)
    return [DeviceCache(columns_each * nbytes),
            DeviceCache(columns_each * nbytes)]


def test_partition_first_fit_clusters_hottest_on_first_device(stats_db):
    manager = DataPlacementManager(stats_db, caches=two_caches(stats_db),
                                   policy="lfu")
    first, second = manager.partition()
    # 400-byte columns are above the 5% replication limit, so they
    # first-fit in rank order: the hottest prefix lands on device 0
    # exactly like the single-device case, device 1 extends it
    assert first == ["t.c4", "t.c3", "t.c2"]
    assert second == ["t.c1", "t.c0"]


def test_partition_replicates_small_columns_everywhere(stats_db):
    nbytes = column_bytes(stats_db)
    # huge caches: every 400-byte column is below 5% of the minimum
    caches = [DeviceCache(100 * nbytes), DeviceCache(100 * nbytes)]
    manager = DataPlacementManager(stats_db, caches=caches, policy="lfu")
    first, second = manager.partition()
    assert first == second  # dimension-sized columns co-locate everywhere


def test_partition_skips_columns_too_big_for_any_device(stats_db):
    import numpy as np

    table = stats_db.table("t")
    table.add_column("wide", ColumnType.INT64,
                     np.arange(10, dtype=np.int64))
    for _ in range(50):  # hottest by far
        stats_db.statistics.record_access("t.wide", now=50.0)
    nbytes = column_bytes(stats_db)
    caches = [DeviceCache(nbytes + nbytes // 2),
              DeviceCache(nbytes + nbytes // 2)]
    manager = DataPlacementManager(stats_db, caches=caches, policy="lfu")
    assignment = manager.partition()
    placed = [key for keys in assignment for key in keys]
    assert "t.wide" not in placed  # 800 B fits in neither 600 B cache
    assert placed  # the smaller columns still fill the devices


def test_partition_ignores_stale_statistics(stats_db):
    stats_db.statistics.record_access("t.ghost_column")
    manager = DataPlacementManager(stats_db, caches=two_caches(stats_db),
                                   policy="lfu")
    placed = [key for keys in manager.partition() for key in keys]
    assert "t.ghost_column" not in placed


# -- placement-driven prefetch ----------------------------------------------


def engine_hardware(stats_db, prefetch_depth=2, gpu_count=1):
    from repro.hardware import HardwareSystem
    from repro.metrics import MetricsCollector

    nbytes = column_bytes(stats_db)
    env = Environment()
    config = SystemConfig(
        gpu_count=gpu_count,
        gpu_memory_bytes=5 * nbytes,
        gpu_cache_bytes=3 * nbytes,
        copy_engine=True,
        prefetch_depth=prefetch_depth,
    )
    hardware = HardwareSystem(env, config, MetricsCollector())
    manager = DataPlacementManager(
        stats_db, caches=[device.cache for device in hardware.gpus],
        policy="lfu",
    )
    return env, hardware, manager


def test_prefetcher_requires_the_copy_engine(stats_db):
    from repro.core import PlacementPrefetcher
    from repro.hardware import HardwareSystem
    from repro.metrics import MetricsCollector

    env = Environment()
    hardware = HardwareSystem(env, SystemConfig(), MetricsCollector())
    manager = DataPlacementManager(stats_db, DeviceCache(1000),
                                   policy="lfu")
    with pytest.raises(ValueError):
        PlacementPrefetcher(hardware, manager)


def test_prefetcher_fills_idle_window_with_ranked_columns(stats_db):
    from repro.core import PlacementPrefetcher

    env, hardware, manager = engine_hardware(stats_db, prefetch_depth=2)
    PlacementPrefetcher(hardware, manager, depth=2).start()
    env.run()
    cache = hardware.gpu_cache
    engine = hardware.copy_engine
    # the two hottest uncached columns arrived in the idle window
    assert "t.c4" in cache and "t.c3" in cache
    assert "t.c2" not in cache  # depth bounds each window
    assert engine.was_prefetched("gpu", "t.c4")
    metrics = hardware.metrics
    assert metrics.prefetch_transfers == 2
    assert metrics.prefetch_bytes == 2 * column_bytes(stats_db)
    assert env.now > 0  # the copies took simulated wire time


def test_prefetched_entries_are_unpinned_and_evictable(stats_db):
    from repro.core import PlacementPrefetcher

    env, hardware, manager = engine_hardware(stats_db, prefetch_depth=2)
    PlacementPrefetcher(hardware, manager, depth=2).start()
    env.run()
    cache = hardware.gpu_cache
    assert not cache.entry("t.c4").pinned
    cache.evict("t.c4")  # ranking was wrong: ages out normally
    assert "t.c4" not in cache


def test_prefetcher_skips_faulted_columns_and_terminates(stats_db):
    from repro.core import PlacementPrefetcher
    from repro.faults import FaultConfig, FaultInjector

    env, hardware, manager = engine_hardware(stats_db, prefetch_depth=2)
    hardware.install_faults(FaultInjector(
        FaultConfig.parse("pcie=1,seed=3"), clock=lambda: env.now,
    ))
    PlacementPrefetcher(hardware, manager, depth=2).start()
    env.run()  # must terminate: failing keys are skipped, not retried
    assert len(hardware.gpu_cache.keys) == 0
    assert hardware.metrics.prefetch_transfers == 0


def test_prefetcher_refills_after_device_reset_with_pinned_entries(stats_db):
    from repro.core import PlacementPrefetcher

    env, hardware, manager = engine_hardware(stats_db, prefetch_depth=2)
    cache = hardware.gpu_cache
    nbytes = column_bytes(stats_db)
    # a pinned entry referenced by a running operator...
    cache.admit("t.c0", nbytes, pinned=True)
    cache.acquire("t.c0")
    # ...survives a device reset as a doomed entry (deferred eviction)
    cache.reset()
    assert "t.c0" in cache
    PlacementPrefetcher(hardware, manager, depth=2).start()
    env.run()
    # the prefetcher refilled the flushed cache around the doomed entry
    assert "t.c4" in cache and "t.c3" in cache
    # the operator finishing releases (and thereby evicts) the doomed
    # entry; prefetched content is untouched
    cache.release("t.c0")
    assert "t.c0" not in cache
    assert "t.c4" in cache and "t.c3" in cache


def test_prefetcher_spawns_one_process_per_device(stats_db):
    from repro.core import PlacementPrefetcher

    env, hardware, manager = engine_hardware(stats_db, gpu_count=2)
    PlacementPrefetcher(hardware, manager, depth=3).start()
    env.run()
    first, second = manager.partition()
    for key in first[:3]:
        assert key in hardware.gpus[0].cache
    for key in second[:3]:
        assert key in hardware.gpus[1].cache
