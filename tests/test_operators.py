"""Unit tests for the physical operators (functional semantics and
nominal-size accounting) against brute-force numpy oracles."""

import numpy as np
import pytest

from repro.engine.expressions import (
    Aggregate,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.engine.intermediates import OperatorResult, ResultFrame, TidSet
from repro.engine.operators import (
    GroupByAggregate,
    HashJoin,
    Limit,
    Materialize,
    PhysicalPlan,
    RefineSelect,
    ScanSelect,
    Sort,
    TidIntersect,
)
from repro.engine.operators.base import TID_BYTES


AMOUNT = ColumnRef("sales", "amount")
PRICE = ColumnRef("sales", "price")
SKEY = ColumnRef("sales", "skey")
SID = ColumnRef("store", "id")
REGION = ColumnRef("store", "region")
SIZE = ColumnRef("store", "size")


class TestScanSelect:
    def test_matches_numpy_mask(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
        result = scan.run(toy_db, [])
        expected = np.flatnonzero(
            toy_db.column("sales.amount").values < 30
        )
        assert np.array_equal(result.payload.positions("sales"), expected)

    def test_nominal_rows_scale_with_selectivity(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
        result = scan.run(toy_db, [])
        actual_sel = result.actual_rows / toy_db.table("sales").actual_rows
        expected_nominal = round(actual_sel * 1_000_000)
        assert result.nominal_rows == expected_nominal
        assert result.nominal_bytes == expected_nominal * TID_BYTES

    def test_bare_scan_is_metadata_only(self, toy_db):
        scan = ScanSelect("sales")
        result = scan.run(toy_db, [])
        assert result.actual_rows == toy_db.table("sales").actual_rows
        assert result.nominal_bytes == 0  # no materialised tid list
        assert scan.required_columns() == set()

    def test_input_bytes_cover_predicate_columns(self, toy_db):
        predicate = Between(AMOUNT, Literal(1), Literal(5))
        scan = ScanSelect("sales", predicate)
        scan.run(toy_db, [])
        expected = toy_db.column("sales.amount").nominal_bytes
        assert scan.input_nominal_bytes(toy_db, []) == expected

    def test_selecting_nothing(self, toy_db):
        scan = ScanSelect("sales", Comparison(">", AMOUNT, Literal(10**9)))
        result = scan.run(toy_db, [])
        assert result.actual_rows == 0
        assert result.nominal_rows == 0


class TestRefineSelect:
    def test_chain_equals_fused_predicate(self, toy_db):
        scan = ScanSelect("sales", Comparison(">=", AMOUNT, Literal(20)))
        refine = RefineSelect(
            scan, "sales", Comparison("<=", AMOUNT, Literal(60))
        )
        base = scan.run(toy_db, [])
        refined = refine.run(toy_db, [base])
        values = toy_db.column("sales.amount").values
        expected = np.flatnonzero((values >= 20) & (values <= 60))
        assert np.array_equal(refined.payload.positions("sales"), expected)

    def test_refine_on_other_column(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(50)))
        refine = RefineSelect(scan, "sales",
                              Comparison("<", PRICE, Literal(10)))
        base = scan.run(toy_db, [])
        refined = refine.run(toy_db, [base])
        amount = toy_db.column("sales.amount").values
        price = toy_db.column("sales.price").values
        expected = np.flatnonzero((amount < 50) & (price < 10))
        assert np.array_equal(refined.payload.positions("sales"), expected)

    def test_input_bytes_proportional_to_intermediate(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(50)))
        refine = RefineSelect(scan, "sales",
                              Comparison("<", PRICE, Literal(10)))
        base = scan.run(toy_db, [])
        width = TID_BYTES + toy_db.column("sales.price").ctype.itemsize
        assert refine.input_nominal_bytes(toy_db, [base]) == (
            base.nominal_rows * width
        )


class TestTidIntersect:
    def test_intersection(self, toy_db):
        left = ScanSelect("sales", Comparison("<", AMOUNT, Literal(50)))
        right = ScanSelect("sales", Comparison("<", PRICE, Literal(10)))
        op = TidIntersect(left, right, "sales")
        result = op.run(toy_db, [left.run(toy_db, []), right.run(toy_db, [])])
        amount = toy_db.column("sales.amount").values
        price = toy_db.column("sales.price").values
        expected = np.flatnonzero((amount < 50) & (price < 10))
        assert np.array_equal(result.payload.positions("sales"), expected)


class TestHashJoin:
    def build(self, toy_db, fact_pred=None, dim_pred=None):
        probe = ScanSelect("sales", fact_pred)
        build = ScanSelect("store", dim_pred)
        join = HashJoin(probe, build, SKEY, SID)
        probe_result = probe.run(toy_db, [])
        build_result = build.run(toy_db, [])
        return join, join.run(toy_db, [probe_result, build_result])

    def test_fk_join_covers_all_fact_rows(self, toy_db):
        _, result = self.build(toy_db)
        # every sales row has a matching store (dense FK domain)
        assert result.actual_rows == toy_db.table("sales").actual_rows

    def test_join_alignment(self, toy_db):
        _, result = self.build(toy_db)
        sales_pos = result.payload.positions("sales")
        store_pos = result.payload.positions("store")
        skey = toy_db.column("sales.skey").values[sales_pos]
        sid = toy_db.column("store.id").values[store_pos]
        assert np.array_equal(skey, sid)

    def test_filtered_build_side(self, toy_db):
        _, result = self.build(
            toy_db, dim_pred=Comparison("<", SIZE, Literal(50))
        )
        store_pos = result.payload.positions("store")
        assert (toy_db.column("store.size").values[store_pos] < 50).all()
        # oracle: count fact rows whose store has size < 50
        small_ids = set(
            toy_db.column("store.id").values[
                toy_db.column("store.size").values < 50
            ]
        )
        expected = sum(
            1 for k in toy_db.column("sales.skey").values if int(k) in small_ids
        )
        assert result.actual_rows == expected

    def test_duplicate_build_keys_expand(self):
        from repro.storage import ColumnType, Database

        db = Database()
        left = db.create_table("l")
        left.add_column("k", ColumnType.INT32,
                        np.array([1, 2, 3], dtype=np.int32))
        right = db.create_table("r")
        right.add_column("k", ColumnType.INT32,
                         np.array([2, 2, 9], dtype=np.int32))
        join = HashJoin(
            ScanSelect("l"), ScanSelect("r"),
            ColumnRef("l", "k"), ColumnRef("r", "k"),
        )
        lres = join.children[0].run(db, [])
        rres = join.children[1].run(db, [])
        result = join.run(db, [lres, rres])
        # key 2 matches twice, keys 1/3 not at all
        assert result.actual_rows == 2
        assert set(result.payload.table_names) == {"l", "r"}

    def test_same_table_on_both_sides_rejected(self, toy_db):
        probe = ScanSelect("sales")
        build = ScanSelect("sales")
        join = HashJoin(probe, build, SKEY, SKEY)
        left = probe.run(toy_db, [])
        right = build.run(toy_db, [])
        with pytest.raises(ValueError):
            join.run(toy_db, [left, right])

    def test_required_columns_are_keys(self, toy_db):
        join, _ = self.build(toy_db)
        assert join.required_columns() == {"sales.skey", "store.id"}


class TestGroupByAggregate:
    def joined(self, toy_db):
        probe = ScanSelect("sales")
        build = ScanSelect("store")
        join = HashJoin(probe, build, SKEY, SID)
        return join.run(
            toy_db, [probe.run(toy_db, []), build.run(toy_db, [])]
        )

    def test_sum_per_group_matches_oracle(self, toy_db):
        joined = self.joined(toy_db)
        op = GroupByAggregate(
            ScanSelect("sales"),  # structural child, unused in run
            [REGION],
            [Aggregate("sum", AMOUNT, "total")],
        )
        result = op.run(toy_db, [joined])
        frame = result.payload
        # oracle with python dicts
        skey = toy_db.column("sales.skey").values
        amount = toy_db.column("sales.amount").values
        region_col = toy_db.column("store.region")
        expected = {}
        for k, a in zip(skey, amount):
            region = region_col.decode(region_col.values[k - 1])
            expected[region] = expected.get(region, 0) + int(a)
        got = dict(zip(frame.decoded("region"), frame.column("total")))
        assert {k: int(v) for k, v in got.items()} == expected

    def test_count_avg_min_max(self, toy_db):
        joined = self.joined(toy_db)
        op = GroupByAggregate(
            ScanSelect("sales"),
            [REGION],
            [
                Aggregate("count", Literal(1), "n"),
                Aggregate("avg", AMOUNT, "mean"),
                Aggregate("min", AMOUNT, "lo"),
                Aggregate("max", AMOUNT, "hi"),
            ],
        )
        result = op.run(toy_db, [joined])
        frame = result.payload
        assert int(frame.column("n").sum()) == toy_db.table("sales").actual_rows
        assert (frame.column("lo") <= frame.column("hi")).all()
        for n, mean, lo, hi in zip(
            frame.column("n"), frame.column("mean"),
            frame.column("lo"), frame.column("hi"),
        ):
            assert lo <= mean <= hi
            assert n > 0

    def test_scalar_aggregate(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
        scanned = scan.run(toy_db, [])
        op = GroupByAggregate(
            scan, [], [Aggregate("sum", Arithmetic("*", AMOUNT, PRICE), "rev")]
        )
        result = op.run(toy_db, [scanned])
        amount = toy_db.column("sales.amount").values.astype(np.int64)
        price = toy_db.column("sales.price").values.astype(np.int64)
        mask = amount < 30
        assert result.payload.column("rev")[0] == (amount * price)[mask].sum()
        assert result.actual_rows == 1

    def test_scalar_aggregate_over_empty_input(self, toy_db):
        scan = ScanSelect("sales", Comparison(">", AMOUNT, Literal(10**9)))
        scanned = scan.run(toy_db, [])
        op = GroupByAggregate(
            scan, [], [Aggregate("sum", AMOUNT, "s"),
                       Aggregate("count", Literal(1), "n")]
        )
        result = op.run(toy_db, [scanned])
        assert result.payload.column("s")[0] == 0
        assert result.payload.column("n")[0] == 0

    def test_groups_sorted_by_key(self, toy_db):
        joined = self.joined(toy_db)
        op = GroupByAggregate(
            ScanSelect("sales"), [REGION],
            [Aggregate("sum", AMOUNT, "total")],
        )
        frame = op.run(toy_db, [joined]).payload
        decoded = frame.decoded("region")
        assert decoded == sorted(decoded)

    def test_needs_groups_or_aggregates(self, toy_db):
        with pytest.raises(ValueError):
            GroupByAggregate(ScanSelect("sales"), [], [])


class TestMaterializeSortLimit:
    def frame_result(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(40)))
        scanned = scan.run(toy_db, [])
        mat = Materialize(scan, [("amount", AMOUNT), ("price", PRICE)])
        return mat, mat.run(toy_db, [scanned]), scanned

    def test_materialize_gathers_values(self, toy_db):
        _, result, scanned = self.frame_result(toy_db)
        positions = scanned.payload.positions("sales")
        expected = toy_db.column("sales.amount").values[positions]
        assert np.array_equal(result.payload.column("amount"), expected)

    def test_materialize_is_cpu_only(self, toy_db):
        mat, _, _ = self.frame_result(toy_db)
        assert mat.cpu_only

    def test_sort_single_key_desc(self, toy_db):
        mat, result, _ = self.frame_result(toy_db)
        sort = Sort(mat, [("amount", False)])
        sorted_result = sort.run(toy_db, [result])
        values = sorted_result.payload.column("amount")
        assert np.array_equal(values, np.sort(values)[::-1])

    def test_sort_multi_key(self, toy_db):
        mat, result, _ = self.frame_result(toy_db)
        sort = Sort(mat, [("price", True), ("amount", False)])
        frame = sort.run(toy_db, [result]).payload
        rows = list(zip(frame.column("price"), -frame.column("amount")))
        assert rows == sorted(rows)

    def test_sort_preserves_row_alignment(self, toy_db):
        mat, result, _ = self.frame_result(toy_db)
        before = set(
            zip(result.payload.column("amount"), result.payload.column("price"))
        )
        frame = Sort(mat, [("amount", True)]).run(toy_db, [result]).payload
        after = set(zip(frame.column("amount"), frame.column("price")))
        assert before == after

    def test_limit(self, toy_db):
        mat, result, _ = self.frame_result(toy_db)
        limited = Limit(mat, 5).run(toy_db, [result])
        assert limited.actual_rows == 5
        assert limited.nominal_rows == 5

    def test_limit_larger_than_input(self, toy_db):
        mat, result, _ = self.frame_result(toy_db)
        limited = Limit(mat, 10**9).run(toy_db, [result])
        assert limited.actual_rows == result.actual_rows

    def test_limit_validation(self, toy_db):
        mat, _, _ = self.frame_result(toy_db)
        with pytest.raises(ValueError):
            Limit(mat, -1)


class TestPlanInfrastructure:
    def make_plan(self, toy_db):
        probe = ScanSelect("sales", Comparison("<", AMOUNT, Literal(40)))
        build = ScanSelect("store")
        join = HashJoin(probe, build, SKEY, SID)
        agg = GroupByAggregate(join, [REGION],
                               [Aggregate("sum", AMOUNT, "total")])
        return PhysicalPlan(agg, name="test")

    def test_post_order_traversal(self, toy_db):
        plan = self.make_plan(toy_db)
        kinds = [op.kind for op in plan.operators]
        assert kinds == ["selection", "selection", "join", "groupby"]
        assert len(plan.leaves) == 2

    def test_required_columns_union(self, toy_db):
        plan = self.make_plan(toy_db)
        assert plan.required_columns() == {
            "sales.amount", "sales.skey", "store.id", "store.region",
        }

    def test_assign_all(self, toy_db):
        plan = self.make_plan(toy_db)
        plan.assign_all("gpu")
        assert all(op.placement == "gpu" for op in plan.operators)

    def test_clone_resets_placement_and_ids(self, toy_db):
        plan = self.make_plan(toy_db)
        plan.assign_all("gpu")
        twin = plan.clone()
        assert all(op.placement is None for op in twin.operators)
        original_ids = {op.op_id for op in plan.operators}
        twin_ids = {op.op_id for op in twin.operators}
        assert not original_ids & twin_ids

    def test_clone_shares_memoised_results(self, toy_db):
        from repro.engine.execution import execute_functional

        plan = self.make_plan(toy_db)
        execute_functional(plan, toy_db)
        twin = plan.clone()
        for original, copy in zip(plan.operators, twin.operators):
            assert copy._cached_result is original._cached_result
            assert copy._cached_result is not None

    def test_produce_returns_fresh_result_objects(self, toy_db):
        scan = ScanSelect("sales", Comparison("<", AMOUNT, Literal(40)))
        first = scan.produce(toy_db, [])
        second = scan.produce(toy_db, [])
        assert first is not second
        assert first.payload is second.payload  # shared numpy work
        first.location = "gpu"
        assert second.location == "cpu"


class TestIntermediates:
    def test_tidset_alignment_validation(self):
        with pytest.raises(ValueError):
            TidSet({"a": np.arange(3), "b": np.arange(4)})
        with pytest.raises(ValueError):
            TidSet({})

    def test_result_frame_validation(self):
        with pytest.raises(ValueError):
            ResultFrame({})
        with pytest.raises(ValueError):
            ResultFrame({"a": np.arange(3), "b": np.arange(2)})

    def test_frame_decoding(self):
        frame = ResultFrame(
            {"s": np.array([1, 0]), "v": np.array([5, 6])},
            dictionaries={"s": ["x", "y"]},
        )
        assert frame.decoded("s") == ["y", "x"]
        assert frame.row_tuples() == [("y", 5), ("x", 6)]

    def test_operator_result_nominal_bytes(self):
        result = OperatorResult(None, actual_rows=10, nominal_rows=1000,
                                row_width_bytes=8)
        assert result.nominal_bytes == 8000

    def test_release_device_memory_idempotent(self):
        from repro.hardware import DeviceHeap

        heap = DeviceHeap(100)
        result = OperatorResult(None, 1, 1, 4)
        result.allocation = heap.allocate(50)
        result.release_device_memory()
        result.release_device_memory()
        assert heap.used == 0
