"""Unit tests for the placement strategies."""

import pytest

from tests.conftest import make_context
from repro.core import STRATEGY_NAMES, get_strategy
from repro.core.placement import (
    AdmissionControlGpu,
    CpuOnly,
    CriticalPath,
    DataDrivenCompile,
    DataDrivenRuntime,
    GpuPreferred,
    RuntimeHype,
)
from repro.engine import Planner
from repro.engine.execution import execute_functional
from repro.engine.operators import HashJoin, Materialize, ScanSelect
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB
from repro.sql import bind


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region order by s desc"
)


def make_plan(toy_db, sql=JOIN_SQL):
    spec = bind(sql, toy_db, name="q")
    return Planner(toy_db).plan(spec)


def placements(plan):
    return {op.label: op.placement for op in plan.operators}


def test_registry_covers_paper_strategies():
    for name in STRATEGY_NAMES:
        strategy = get_strategy(name)
        assert strategy is not None
    with pytest.raises(KeyError):
        get_strategy("quantum")


def test_registry_returns_fresh_instances():
    assert get_strategy("chopping") is not get_strategy("chopping")


def test_cpu_only_assigns_everything_to_cpu(toy_db):
    env, hw, ctx = make_context(toy_db)
    plan = make_plan(toy_db)
    CpuOnly().prepare_plan(ctx, plan)
    assert all(op.placement == "cpu" for op in plan.operators)


def test_gpu_preferred_assigns_gpu_except_host_only(toy_db):
    env, hw, ctx = make_context(toy_db)
    plan = make_plan(toy_db)
    GpuPreferred().prepare_plan(ctx, plan)
    for op in plan.operators:
        if op.cpu_only:
            assert op.placement == "cpu"
        else:
            assert op.placement == "gpu"


def test_admission_control_is_gpu_preferred_with_limit():
    strategy = AdmissionControlGpu()
    assert strategy.admission_limit == 1
    assert isinstance(strategy, GpuPreferred)


def test_data_driven_compile_requires_cached_inputs(toy_db):
    env, hw, ctx = make_context(toy_db)
    plan = make_plan(toy_db)
    # nothing cached: every operator that reads a column runs on the CPU
    # (a bare scan reads nothing and may be placed anywhere for free)
    DataDrivenCompile().prepare_plan(ctx, plan)
    for op in plan.operators:
        if op.required_columns():
            assert op.placement == "cpu", op.label


def test_data_driven_compile_with_full_cache(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    DataDrivenCompile().prepare_plan(ctx, plan)
    for op in plan.operators:
        if op.cpu_only:
            assert op.placement == "cpu"
        elif any(c.cpu_only or c.placement == "cpu" for c in op.children):
            assert op.placement == "cpu"
        else:
            assert op.placement == "gpu"


def test_data_driven_chain_stops_at_first_uncached(toy_db):
    env, hw, ctx = make_context(toy_db)
    # cache only the fact-side columns, not the dimension keys
    for key in ("sales.amount", "sales.skey"):
        column = toy_db.column(key)
        hw.gpu_cache.admit(key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    DataDrivenCompile().prepare_plan(ctx, plan)
    by_type = {type(op): op for op in plan.operators}
    scan_fact = [
        op for op in plan.operators
        if isinstance(op, ScanSelect) and op.table == "sales"
    ][0]
    join = by_type[HashJoin]
    assert scan_fact.placement == "gpu"
    assert join.placement == "cpu"  # store.id not cached
    # and everything above the switch stays on the CPU
    for op in plan.operators:
        if op.op_id > join.op_id:
            assert op.placement == "cpu"


def test_data_driven_runtime_reacts_to_child_location(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    results = {}
    for op in plan.operators:
        child_results = [results[c.op_id] for c in op.children]
        results[op.op_id] = op.run(toy_db, child_results)
    strategy = DataDrivenRuntime()
    join = [op for op in plan.operators if isinstance(op, HashJoin)][0]
    child_results = [results[c.op_id] for c in join.children]
    # children on the GPU: join goes to the GPU
    for r in child_results:
        r.location = "gpu"
    assert strategy.choose_processor(ctx, join, child_results) == "gpu"
    # one child fell back to the CPU (abort): join follows
    child_results[0].location = "cpu"
    assert strategy.choose_processor(ctx, join, child_results) == "cpu"


def test_runtime_hype_prefers_gpu_when_hot(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    scan = plan.leaves[0]
    strategy = RuntimeHype()
    assert strategy.choose_processor(ctx, scan, []) == "gpu"


def test_runtime_hype_avoids_gpu_when_transfers_dominate(toy_db):
    env, hw, ctx = make_context(toy_db)  # cold cache
    plan = make_plan(toy_db)
    scan = [op for op in plan.leaves if op.table == "sales"][0]
    strategy = RuntimeHype()
    assert strategy.choose_processor(ctx, scan, []) == "cpu"


def test_runtime_hype_balances_load(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    scan = [op for op in plan.leaves if op.table == "sales"][0]
    strategy = RuntimeHype()
    assert strategy.choose_processor(ctx, scan, []) == "gpu"
    # pile estimated work on the GPU: the placer diverts to the CPU
    ctx.load.assign("gpu", 1e6)
    assert strategy.choose_processor(ctx, scan, []) == "cpu"


def test_critical_path_all_cpu_when_cold(toy_db):
    env, hw, ctx = make_context(toy_db)
    plan = make_plan(toy_db)
    CriticalPath().prepare_plan(ctx, plan)
    # cold cache: transfers dominate, the optimizer keeps the CPU plan
    assert all(op.placement == "cpu" for op in plan.operators)


def test_critical_path_uses_gpu_when_hot(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    CriticalPath().prepare_plan(ctx, plan)
    assert any(op.placement == "gpu" for op in plan.operators)


def test_critical_path_binary_ops_need_both_children_on_gpu(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    CriticalPath().prepare_plan(ctx, plan)
    for op in plan.operators:
        if op.placement == "gpu" and op.children:
            assert all(c.placement == "gpu" for c in op.children)


def test_strategy_executor_attributes():
    assert get_strategy("chopping").executor == "chopping"
    assert get_strategy("data_driven_chopping").executor == "chopping"
    assert get_strategy("runtime").executor == "eager"
    assert get_strategy("data_driven").admit_to_cache is False
    assert get_strategy("data_driven_chopping").uses_data_placement
    assert get_strategy("gpu_only").admit_to_cache is True
