"""Unit/integration tests for the workload runner."""

import pytest

from repro.core import STRATEGY_NAMES
from repro.engine import Planner, execute_reference
from repro.engine.execution import execute_functional
from repro.harness import run_workload
from repro.harness.runner import workload_footprint_bytes
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB
from repro.sql import bind
from repro.workloads import ssb
from repro.workloads.base import WorkloadQuery, sql_workload


QUERIES = {
    "small": (
        "select region, sum(amount) as s from sales, store "
        "where skey = id and amount < 40 group by region order by s desc"
    ),
    "scalar": "select sum(price) as p from sales where amount between 5 and 60",
}


def make_workload(toy_db):
    return sql_workload(toy_db, QUERIES)


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_every_strategy_produces_correct_results(toy_db, strategy):
    queries = make_workload(toy_db)
    expected = {
        q.name: execute_functional(q.template_plan(), toy_db).payload.row_tuples()
        for q in queries
    }
    run = run_workload(toy_db, queries, strategy, users=2, repetitions=2,
                       collect_results=True)
    for name, rows in expected.items():
        assert run.results[name].row_tuples() == rows, (strategy, name)


def test_results_match_reference_evaluator(toy_db):
    queries = make_workload(toy_db)
    run = run_workload(toy_db, queries, "data_driven_chopping",
                       collect_results=True)
    for query in queries:
        reference = execute_reference(query.spec, toy_db)
        got = sorted(run.results[query.name].row_tuples())
        assert got == sorted(reference)


def test_workload_seconds_is_makespan(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "cpu_only",
                       repetitions=3)
    assert run.seconds > 0
    assert run.seconds == run.metrics.workload_seconds
    latest = max(q.end for q in run.metrics.queries)
    assert run.seconds == pytest.approx(latest)


def test_query_records_cover_all_executions(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "cpu_only",
                       users=3, repetitions=5)
    assert len(run.metrics.queries) == 2 * 5
    assert {q.user for q in run.metrics.queries} <= {0, 1, 2}


def test_total_work_fixed_across_users(toy_db):
    """The paper's setup: the workload is fixed; users only change the
    concurrency.  On the CPU-only baseline the makespan is (nearly)
    unchanged."""
    times = {}
    for users in (1, 2, 5):
        run = run_workload(toy_db, make_workload(toy_db), "cpu_only",
                           users=users, repetitions=10)
        times[users] = run.seconds
    base = times[1]
    for users, seconds in times.items():
        assert seconds == pytest.approx(base, rel=0.05), times


def test_admission_control_serialises_queries(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "admission_control",
                       users=4, repetitions=4)
    # with a single admission slot, query completions are strictly
    # sequential: no two queries end at overlapping execution windows,
    # so the makespan is at least the number of queries times the
    # fastest query
    ends = sorted(q.end for q in run.metrics.queries)
    assert all(b > a for a, b in zip(ends, ends[1:]))
    # queueing counts toward latency (the paper's admission-control
    # cost): under 4 users the mean latency exceeds the single-user one
    solo = run_workload(toy_db, make_workload(toy_db), "admission_control",
                        users=1, repetitions=4)
    assert run.metrics.mean_latency() > solo.metrics.mean_latency()


def test_warm_cache_toggle(toy_db):
    cold = run_workload(toy_db, make_workload(toy_db), "gpu_only",
                        warm_cache=False)
    warm = run_workload(toy_db, make_workload(toy_db), "gpu_only",
                        warm_cache=True)
    assert warm.metrics.cpu_to_gpu_bytes <= cold.metrics.cpu_to_gpu_bytes
    assert warm.seconds <= cold.seconds


def test_data_driven_cold_start_runs_on_cpu(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "data_driven",
                       warm_cache=False)
    assert run.metrics.operators_per_processor.get("gpu", 0) == 0 or (
        run.metrics.cpu_to_gpu_bytes == 0
    )


def test_placement_policy_forwarded(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "data_driven",
                       placement_policy="lru")
    assert run.seconds > 0


def test_invalid_arguments_rejected(toy_db):
    with pytest.raises(ValueError):
        run_workload(toy_db, make_workload(toy_db), "cpu_only", users=0)
    with pytest.raises(ValueError):
        run_workload(toy_db, make_workload(toy_db), "cpu_only", repetitions=0)
    with pytest.raises(KeyError):
        run_workload(toy_db, make_workload(toy_db), "not_a_strategy")


def test_workload_footprint(toy_db):
    queries = make_workload(toy_db)
    footprint = workload_footprint_bytes(queries, toy_db)
    keys = set()
    for q in queries:
        keys |= q.required_columns()
    assert footprint == sum(toy_db.column(k).nominal_bytes for k in keys)


def test_workload_query_validation(toy_db):
    with pytest.raises(ValueError):
        WorkloadQuery("bad", toy_db)  # neither sql nor plan builder
    with pytest.raises(ValueError):
        WorkloadQuery("bad", toy_db, sql="select 1",
                      plan_builder=lambda db: None)


def test_more_users_than_queries(toy_db):
    run = run_workload(toy_db, make_workload(toy_db), "cpu_only", users=50,
                       repetitions=1)
    assert len(run.metrics.queries) == 2
