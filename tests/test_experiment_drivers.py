"""Smoke tests: every figure driver runs with tiny parameters and
produces the columns its benchmark and the EXPERIMENTS.md index expect."""

import pytest

from repro.harness import experiments as E


def columns_of(result):
    return set(result.columns())


def test_figure01_columns():
    result = E.figure01(scale_factor=5, repetitions=1)
    assert columns_of(result) == {"strategy", "seconds", "h2d_seconds"}
    assert len(result.rows) == 3


def test_buffer_sweep_row_count():
    result = E.buffer_size_sweep(
        strategies=("gpu_only",), buffer_gib=(0.0, 2.5), repetitions=1
    )
    assert len(result.rows) == 2
    assert {"buffer_gib", "seconds", "h2d_seconds",
            "cache_hit_rate"} <= columns_of(result)


def test_micro_users_sweep_row_count():
    result = E.micro_users_sweep(
        strategies=("chopping",), users=(1, 3), total_queries=6
    )
    assert len(result.rows) == 2
    assert {"users", "aborts", "wasted_seconds"} <= columns_of(result)


def test_scale_factor_sweep_covers_strategies():
    result = E.scale_factor_sweep(
        "ssb", scale_factors=(5,), strategies=("cpu_only", "gpu_only"),
        repetitions=1,
    )
    assert {row["strategy"] for row in result.rows} == {
        "cpu_only", "gpu_only",
    }
    assert {"footprint_gib", "d2h_seconds"} <= columns_of(result)


def test_figure16_exceeds_cache_flag_consistent():
    result = E.figure16(benchmarks=("ssb",), scale_factors=(5, 30))
    from repro.harness.experiments import FULL_CONFIG

    cache_gib = FULL_CONFIG.gpu_cache_bytes / (1 << 30)
    for row in result.rows:
        assert row["exceeds_cache"] == (row["footprint_gib"] > cache_gib)


def test_query_latencies_all_queries_present():
    result = E.query_latencies(
        benchmark="ssb", scale_factor=5, strategies=("cpu_only",),
        repetitions=1,
    )
    queries = {row["query"] for row in result.rows}
    assert len(queries) == 13


def test_query_latencies_subset_selection():
    result = E.query_latencies(
        benchmark="ssb", scale_factor=5, strategies=("cpu_only",),
        repetitions=1, query_names=("Q1.1", "Q3.3"),
    )
    assert {row["query"] for row in result.rows} == {"Q1.1", "Q3.3"}


def test_benchmark_users_sweep_tpch():
    result = E.benchmark_users_sweep(
        "tpch", users=(1,), strategies=("cpu_only",), repetitions=1
    )
    assert len(result.rows) == 1
    assert result.rows[0]["benchmark"] == "tpch"


def test_figure24_policies_and_fractions():
    result = E.figure24(fractions=(0.0, 0.8), policies=("lfu",),
                        repetitions=1)
    assert len(result.rows) == 2
    assert all(row["policy"] == "lfu" for row in result.rows)


def test_figure25_rows_per_query_user_strategy():
    result = E.figure25(users=(1,), strategies=("cpu_only",),
                        repetitions=1)
    assert len(result.rows) == 13


def test_engine_comparison_has_both_profiles():
    result = E.engine_comparison("tpch", repetitions=1)
    engines = {row["engine"] for row in result.rows}
    backends = {row["backend"] for row in result.rows}
    assert engines == {"cogadb", "ocelot"}
    assert backends == {"cpu", "gpu"}


def test_multi_gpu_scaling_columns():
    result = E.multi_gpu_scaling(
        gpu_counts=(1,), strategies=("chopping",), users=2, repetitions=1
    )
    assert {"gpus", "seconds", "gpu_operators"} <= columns_of(result)


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        E.scale_factor_sweep("tpcds", scale_factors=(5,),
                             strategies=("cpu_only",))


def test_databases_are_cached_and_deterministic():
    first = E.ssb_database(5)
    second = E.ssb_database(5)
    assert first is second  # lru_cache
    import numpy as np

    fresh = E.ssb_database.__wrapped__(5)
    assert np.array_equal(
        fresh.column("lineorder.lo_revenue").values,
        first.column("lineorder.lo_revenue").values,
    )


def test_overload_sweep_rows_and_lifecycle_columns():
    result = E.overload_sweep(
        loads=(1, 4), scale_factor=5, repetitions=1, fault_rate=0.0
    )
    assert len(result.rows) == 4  # each load with the lifecycle off/on
    assert {"users", "lifecycle", "p99_latency", "admission_waits",
            "hedges", "cancelled"} <= columns_of(result)
    by_state = {(row["users"], row["lifecycle"]) for row in result.rows}
    assert by_state == {(1, "off"), (1, "on"), (4, "off"), (4, "on")}
    for row in result.rows:
        if row["lifecycle"] == "off":
            assert row["admission_waits"] == 0
