"""Unit tests for the SQL parser."""

import pytest

from repro.sql.ast import (
    ParsedAggregate,
    ParsedAnd,
    ParsedArith,
    ParsedBetween,
    ParsedColumn,
    ParsedComparison,
    ParsedIn,
    ParsedNot,
    ParsedOr,
)
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse


def test_select_star():
    statement = parse("select * from lineorder")
    assert statement.items[0].is_star
    assert statement.tables == ["lineorder"]
    assert statement.where is None


def test_multiple_tables():
    statement = parse("select * from a, b, c")
    assert statement.tables == ["a", "b", "c"]


def test_simple_comparison():
    statement = parse("select * from t where a < 25")
    predicate = statement.where
    assert isinstance(predicate, ParsedComparison)
    assert predicate.op == "<"
    assert isinstance(predicate.left, ParsedColumn)
    assert predicate.left.name == "a"
    assert predicate.right.value == 25


def test_conjunction_flattening():
    statement = parse("select * from t where a = 1 and b = 2 and c = 3")
    assert isinstance(statement.where, ParsedAnd)
    assert len(statement.where.children) == 3


def test_or_precedence_lower_than_and():
    statement = parse("select * from t where a = 1 and b = 2 or c = 3")
    assert isinstance(statement.where, ParsedOr)
    assert isinstance(statement.where.children[0], ParsedAnd)


def test_parenthesised_predicate():
    statement = parse("select * from t where (a = 1 or b = 2) and c = 3")
    assert isinstance(statement.where, ParsedAnd)
    assert isinstance(statement.where.children[0], ParsedOr)


def test_between():
    statement = parse("select * from t where a between 1 and 3")
    predicate = statement.where
    assert isinstance(predicate, ParsedBetween)
    assert predicate.low.value == 1
    assert predicate.high.value == 3


def test_between_binds_inner_and():
    statement = parse("select * from t where a between 1 and 3 and b = 2")
    assert isinstance(statement.where, ParsedAnd)
    assert isinstance(statement.where.children[0], ParsedBetween)
    assert isinstance(statement.where.children[1], ParsedComparison)


def test_in_list_of_strings():
    statement = parse("select * from t where c in ('X1', 'X5')")
    predicate = statement.where
    assert isinstance(predicate, ParsedIn)
    assert predicate.values == ["X1", "X5"]
    assert not predicate.negated


def test_not_in():
    statement = parse("select * from t where c not in (1, 2)")
    assert isinstance(statement.where, ParsedIn)
    assert statement.where.negated


def test_not_predicate():
    statement = parse("select * from t where not a = 1")
    assert isinstance(statement.where, ParsedNot)


def test_aggregate_with_alias():
    statement = parse("select sum(a * b) as total from t")
    item = statement.items[0]
    assert isinstance(item.expr, ParsedAggregate)
    assert item.expr.func == "sum"
    assert isinstance(item.expr.expr, ParsedArith)
    assert item.alias == "total"


def test_count_star():
    statement = parse("select count(*) as n from t")
    assert statement.items[0].expr.func == "count"
    assert statement.items[0].expr.expr is None


def test_bare_alias_without_as():
    statement = parse("select sum(a) total from t")
    assert statement.items[0].alias == "total"


def test_arithmetic_precedence():
    statement = parse("select a + b * c from t")
    expr = statement.items[0].expr
    assert isinstance(expr, ParsedArith)
    assert expr.op == "+"
    assert isinstance(expr.right, ParsedArith)
    assert expr.right.op == "*"


def test_parenthesised_arithmetic():
    statement = parse("select (a + b) * c from t")
    expr = statement.items[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_group_by_and_order_by():
    statement = parse(
        "select d_year, sum(x) as s from t group by d_year "
        "order by d_year asc, s desc"
    )
    assert [c.name for c in statement.group_by] == ["d_year"]
    assert [(o.column.name, o.ascending) for o in statement.order_by] == [
        ("d_year", True),
        ("s", False),
    ]


def test_order_by_defaults_ascending():
    statement = parse("select a from t order by a")
    assert statement.order_by[0].ascending


def test_limit():
    statement = parse("select a from t limit 10")
    assert statement.limit == 10


def test_distinct_flag():
    statement = parse("select distinct a from t")
    assert statement.distinct


def test_qualified_columns():
    statement = parse("select t.a from t where t.a = 1")
    assert statement.items[0].expr.table == "t"


def test_trailing_garbage_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select a from t garbage garbage")


def test_missing_from_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select a")


def test_missing_predicate_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("select a from t where")


def test_string_comparisons_against_column():
    statement = parse("select * from t where c >= 'MFGR#2221'")
    assert statement.where.op == ">="
    assert statement.where.right.value == "MFGR#2221"


def test_column_compared_to_column():
    statement = parse("select * from t, u where t.a = u.b")
    predicate = statement.where
    assert isinstance(predicate.left, ParsedColumn)
    assert isinstance(predicate.right, ParsedColumn)
    assert predicate.left.table == "t"
    assert predicate.right.table == "u"


def test_negative_literal_in_comparison():
    statement = parse("select * from t where a < -5")
    assert statement.where.right.value == -5


def test_negative_float_literal():
    statement = parse("select * from t where a >= -2.5")
    assert statement.where.right.value == -2.5


def test_negative_literal_in_in_list():
    statement = parse("select * from t where a in (-1, 2, -3)")
    assert statement.where.values == [-1, 2, -3]


def test_negative_literal_in_between():
    statement = parse("select * from t where a between -10 and -1")
    assert statement.where.low.value == -10
    assert statement.where.high.value == -1


def test_unary_minus_on_column():
    statement = parse("select -a from t")
    expr = statement.items[0].expr
    assert isinstance(expr, ParsedArith)
    assert expr.op == "-"
    assert expr.left.value == 0
    assert expr.right.name == "a"


def test_unary_plus_is_ignored():
    statement = parse("select * from t where a > +3")
    assert statement.where.right.value == 3


def test_double_negation():
    statement = parse("select * from t where a = --4")
    assert statement.where.right.value == 4


def test_having_clause_parses():
    statement = parse(
        "select a, sum(b) as s from t group by a having s > 10 "
        "order by s desc"
    )
    assert statement.having is not None
    assert isinstance(statement.having, ParsedComparison)
    assert statement.having.left.name == "s"
