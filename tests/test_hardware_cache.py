"""Unit tests for the device column cache."""

import pytest

from repro.hardware import DeviceCache
from repro.metrics import MetricsCollector


def make_cache(capacity=100, policy="lru", clock=None):
    return DeviceCache(capacity, policy=policy, clock=clock)


def test_admit_and_contains():
    cache = make_cache()
    assert cache.admit("a", 40)
    assert "a" in cache
    assert cache.used == 40
    assert cache.available == 60


def test_admit_too_large_column_fails():
    cache = make_cache(capacity=100)
    assert not cache.admit("huge", 101)
    assert "huge" not in cache
    assert cache.used == 0


def test_admit_existing_key_is_a_touch():
    time = [0.0]
    cache = make_cache(clock=lambda: time[0])
    cache.admit("a", 40)
    time[0] = 5.0
    assert cache.admit("a", 40)
    assert cache.used == 40
    assert cache.entry("a").last_access == 5.0


def test_lru_eviction_order():
    time = [0.0]
    cache = make_cache(capacity=100, policy="lru", clock=lambda: time[0])
    cache.admit("a", 40)
    time[0] = 1.0
    cache.admit("b", 40)
    time[0] = 2.0
    cache.touch("a")  # a is now more recent than b
    time[0] = 3.0
    assert cache.admit("c", 40)  # evicts b (least recently used)
    assert "b" not in cache
    assert "a" in cache and "c" in cache


def test_lfu_eviction_order():
    time = [0.0]
    cache = make_cache(capacity=100, policy="lfu", clock=lambda: time[0])
    cache.admit("a", 40)
    cache.admit("b", 40)
    for _ in range(5):
        cache.touch("b")
    time[0] = 1.0
    assert cache.admit("c", 40)  # evicts a (least frequently used)
    assert "a" not in cache
    assert "b" in cache and "c" in cache


def test_pinned_entries_never_evicted():
    cache = make_cache(capacity=100)
    cache.admit("a", 60, pinned=True)
    assert not cache.admit("b", 60)  # cannot evict the pinned entry
    assert "a" in cache
    cache.unpin("a")
    assert cache.admit("b", 60)
    assert "a" not in cache


def test_in_use_entries_never_evicted():
    cache = make_cache(capacity=100)
    cache.admit("a", 60)
    cache.acquire("a")
    assert not cache.admit("b", 60)
    cache.release("a")
    assert cache.admit("b", 60)


def test_release_without_acquire_is_error():
    cache = make_cache()
    cache.admit("a", 10)
    with pytest.raises(RuntimeError):
        cache.release("a")


def test_release_after_forced_eviction_is_tolerated():
    cache = make_cache(capacity=100)
    cache.admit("a", 10)
    cache.acquire("a")
    cache.release("a")
    cache.evict("a")
    cache.release("a")  # deferred cleanup path: no error


def test_multiple_evictions_to_fit_one_column():
    cache = make_cache(capacity=100)
    cache.admit("a", 30)
    cache.admit("b", 30)
    cache.admit("c", 30)
    assert cache.admit("big", 90)
    assert cache.keys == ["big"]
    assert cache.used == 90


def test_used_never_exceeds_capacity():
    cache = make_cache(capacity=100)
    for i in range(20):
        cache.admit("col{}".format(i), 33)
        assert cache.used <= cache.capacity


def test_set_capacity_shrink_evicts():
    cache = make_cache(capacity=100)
    cache.admit("a", 40)
    cache.admit("b", 40)
    cache.set_capacity(50)
    assert cache.used <= 50
    assert len(cache) == 1


def test_evict_all():
    cache = make_cache()
    cache.admit("a", 10, pinned=True)
    cache.admit("b", 10)
    cache.evict_all()
    assert len(cache) == 0
    assert cache.used == 0


def test_metrics_hits_misses_evictions():
    metrics = MetricsCollector()
    cache = DeviceCache(100, metrics=metrics)
    cache.admit("a", 60)
    cache.touch("a")
    cache.record_miss()
    cache.admit("b", 60)  # evicts a
    assert metrics.cache_hits == 1
    assert metrics.cache_misses == 1
    assert metrics.cache_evictions == 1
    assert metrics.cache_hit_rate == 0.5


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        DeviceCache(100, policy="fifo")
