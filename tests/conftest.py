"""Shared fixtures: small deterministic databases and simulation
contexts."""

import numpy as np
import pytest

from repro.engine.execution import ExecutionContext
from repro.hardware import HardwareSystem, SystemConfig
from repro.sim import Environment
from repro.storage import ColumnType, Database
from repro.workloads import ssb, tpch


def make_context(database, config=None):
    """A fresh (env, hardware, ctx) triple for simulation tests."""
    env = Environment()
    hardware = HardwareSystem(env, config or SystemConfig())
    ctx = ExecutionContext(hardware, database)
    return env, hardware, ctx


@pytest.fixture(scope="session", autouse=True)
def _bounded_experiment_caches():
    """Drop the harness-level database/workload/plan-result caches when
    the session ends, so back-to-back pytest runs (and the parallel
    grid workers forked from one) never accumulate stale state."""
    yield
    from repro.harness.experiments import clear_database_caches
    from repro.storage import shm

    clear_database_caches()
    leaked = shm.leaked_segments()
    assert not leaked, (
        "shared-memory segments leaked past the test session: "
        "{}".format(leaked))


@pytest.fixture(scope="session")
def ssb_db():
    """A small SSB database (actual arrays small, nominal tiny SF)."""
    return ssb.generate(scale_factor=0.01, data_scale=0.01, seed=123)


@pytest.fixture(scope="session")
def tpch_db():
    """A small TPC-H database."""
    return tpch.generate(scale_factor=0.01, data_scale=0.01, seed=321)


@pytest.fixture()
def toy_db():
    """A two-table database with known contents for operator tests."""
    db = Database("toy")
    rng = np.random.default_rng(5)
    n = 500
    fact = db.create_table("sales", nominal_rows=1_000_000)
    fact.add_column("skey", ColumnType.INT32, rng.integers(1, 21, n))
    fact.add_column("amount", ColumnType.INT32, rng.integers(1, 100, n))
    fact.add_column("price", ColumnType.INT32, rng.integers(1, 50, n))
    dim = db.create_table("store", nominal_rows=20)
    dim.add_column("id", ColumnType.INT32, np.arange(1, 21))
    dim.add_string_column(
        "region", [["north", "south", "east", "west"][i % 4] for i in range(20)]
    )
    dim.add_column("size", ColumnType.INT32, np.arange(20) * 10)
    return db
