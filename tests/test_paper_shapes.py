"""Reproduction shape tests: the qualitative claims of every paper
figure must hold on (scaled-down) harness runs.

These are the repository's headline assertions — each test states the
paper's claim it checks.
"""

import pytest

from repro.harness import experiments as E


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def figure01():
    return E.figure01(scale_factor=20, repetitions=2)


def test_fig01_cold_gpu_slower_than_cpu(figure01):
    """Fig. 1: with uncached input, using the GPU slows the system down."""
    seconds = {row["strategy"]: row["seconds"] for row in figure01.rows}
    assert seconds["gpu (cold cache)"] > seconds["cpu"]


def test_fig01_hot_gpu_beats_cpu_at_moderate_scale():
    """Fig. 1 (moderate SF): the hot-cache GPU accelerates by ~2.5x."""
    result = E.figure01(scale_factor=10, repetitions=2)
    seconds = {row["strategy"]: row["seconds"] for row in result.rows}
    assert seconds["gpu (hot cache)"] * 1.5 < seconds["cpu"]


# ---------------------------------------------------------------------------
# Figures 2, 5, 6 (cache thrashing)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def buffer_sweep():
    return E.buffer_size_sweep(
        strategies=("gpu_only", "data_driven"),
        buffer_gib=(0.0, 1.0, 2.0, 2.5),
        repetitions=4,
    )


def test_fig02_thrashing_degradation_factor(buffer_sweep):
    """Fig. 2: ~24x degradation when the working set exceeds the cache."""
    series = dict(buffer_sweep.series("buffer_gib", "seconds", "strategy"))
    gpu = dict(series["gpu_only"])
    degradation = gpu[0.0] / gpu[2.5]
    assert degradation > 10, degradation
    assert degradation < 60, degradation


def test_fig02_degradation_vanishes_once_working_set_fits(buffer_sweep):
    series = dict(buffer_sweep.series("buffer_gib", "seconds", "strategy"))
    gpu = dict(series["gpu_only"])
    assert gpu[2.0] == pytest.approx(gpu[2.5], rel=0.05)


def test_fig05_data_driven_monotone_and_never_thrashes(buffer_sweep):
    """Fig. 5: Data-Driven degrades gracefully — more cache never hurts,
    and it is never slower than its zero-cache (CPU) level."""
    series = dict(buffer_sweep.series("buffer_gib", "seconds", "strategy"))
    dd = [s for _, s in series["data_driven"]]
    assert all(b <= a * 1.05 for a, b in zip(dd, dd[1:])), dd
    assert max(dd) == pytest.approx(dd[0], rel=0.05)


def test_fig05_data_driven_beats_thrashing_operator_driven(buffer_sweep):
    series = dict(buffer_sweep.series("buffer_gib", "seconds", "strategy"))
    gpu = dict(series["gpu_only"])
    dd = dict(series["data_driven"])
    # in the thrashing regime Data-Driven wins big
    assert dd[1.0] < gpu[1.0] / 2


def test_fig06_transfer_time_explains_thrashing(buffer_sweep):
    """Fig. 6: the degradation is caused by CPU->GPU transfer time."""
    series = dict(
        buffer_sweep.series("buffer_gib", "h2d_seconds", "strategy")
    )
    gpu = dict(series["gpu_only"])
    dd = dict(series["data_driven"])
    assert gpu[0.0] > 10 * max(dd[0.0], 1e-9)
    total = dict(
        dict(buffer_sweep.series("buffer_gib", "seconds", "strategy"))[
            "gpu_only"
        ]
    )
    # transfers dominate the thrashing end
    assert gpu[0.0] > 0.8 * total[0.0] - 1e-9


# ---------------------------------------------------------------------------
# Figures 3, 7, 9, 12, 13 (heap contention)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def users_sweep():
    return E.micro_users_sweep(
        strategies=("gpu_only", "data_driven", "runtime", "chopping",
                    "data_driven_chopping"),
        users=(4, 7, 20),
        total_queries=100,
    )


def series_of(sweep, metric, strategy):
    return dict(dict(sweep.series("users", metric, "strategy"))[strategy])


def test_fig03_contention_degrades_beyond_seven_users(users_sweep):
    """Fig. 3: performance degrades once >7 users share the device."""
    gpu = series_of(users_sweep, "seconds", "gpu_only")
    assert gpu[20] > gpu[4] * 1.5
    assert gpu[7] < gpu[4] * 1.3  # still fine at the breakeven point


def test_fig03_aborts_appear_only_past_the_memory_limit(users_sweep):
    aborts = series_of(users_sweep, "aborts", "gpu_only")
    assert aborts[4] == 0
    assert aborts[20] > 0


def test_fig07_data_driven_does_not_solve_contention(users_sweep):
    """Fig. 7: Data-Driven alone shows the same degradation."""
    dd = series_of(users_sweep, "seconds", "data_driven")
    assert dd[20] > dd[4] * 1.5
    assert series_of(users_sweep, "aborts", "data_driven")[20] > 0


def test_fig09_runtime_placement_improves_but_not_optimal(users_sweep):
    """Fig. 9: run-time placement helps, yet stays off the optimum."""
    gpu = series_of(users_sweep, "seconds", "gpu_only")
    runtime = series_of(users_sweep, "seconds", "runtime")
    chopping = series_of(users_sweep, "seconds", "chopping")
    assert runtime[20] <= gpu[20]
    assert runtime[20] > chopping[20] * 1.2


def test_fig12_chopping_is_near_optimal(users_sweep):
    """Fig. 12: Chopping stays near the single-user-equivalent time."""
    chopping = series_of(users_sweep, "seconds", "chopping")
    assert chopping[20] < chopping[4] * 1.35
    ddc = series_of(users_sweep, "seconds", "data_driven_chopping")
    assert ddc[20] < ddc[4] * 1.35


def test_fig13_chopping_eliminates_aborts(users_sweep):
    """Fig. 13: the thread pool practically removes operator aborts."""
    assert series_of(users_sweep, "aborts", "gpu_only")[20] > 0
    assert series_of(users_sweep, "aborts", "chopping")[20] == 0
    assert series_of(users_sweep, "aborts", "data_driven_chopping")[20] == 0


# ---------------------------------------------------------------------------
# Figures 14, 15, 16 (scale factor sweep)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def scale_sweep():
    return E.scale_factor_sweep(
        benchmark="ssb", scale_factors=(5, 15, 30), repetitions=1,
        strategies=("cpu_only", "gpu_only", "data_driven",
                    "chopping", "data_driven_chopping"),
    )


def sf_series(sweep, metric, strategy):
    return dict(dict(sweep.series("scale_factor", metric, "strategy"))[strategy])


def test_fig14_gpu_only_falls_behind_at_sf15(scale_sweep):
    """Fig. 14: GPU-only is inferior from SF 15 on."""
    cpu = sf_series(scale_sweep, "seconds", "cpu_only")
    gpu = sf_series(scale_sweep, "seconds", "gpu_only")
    assert gpu[5] < cpu[5]       # small data: GPU wins
    assert gpu[15] > cpu[15]     # crossover
    assert gpu[30] > cpu[30] * 1.5


def test_fig14_data_driven_chopping_is_robust(scale_sweep):
    """Fig. 14: Data-Driven Chopping never performs (meaningfully)
    worse than CPU-only and beats GPU-only when resources are scarce."""
    cpu = sf_series(scale_sweep, "seconds", "cpu_only")
    gpu = sf_series(scale_sweep, "seconds", "gpu_only")
    ddc = sf_series(scale_sweep, "seconds", "data_driven_chopping")
    for sf in (5, 15, 30):
        assert ddc[sf] <= cpu[sf] * 1.1, sf
    assert gpu[30] / ddc[30] > 1.8  # paper: up to factor 2


def test_fig15_gpu_only_transfer_time_grows_fastest(scale_sweep):
    """Fig. 15: GPU-only spends by far the most time on CPU->GPU IO;
    Data-Driven (Chopping) saves the most."""
    gpu = sf_series(scale_sweep, "h2d_seconds", "gpu_only")
    ddc = sf_series(scale_sweep, "h2d_seconds", "data_driven_chopping")
    assert gpu[30] > 10 * max(ddc[30], 1e-9)


def test_fig16_footprint_exceeds_cache_from_sf15(scale_sweep):
    """Fig. 16: the workload footprint crosses the data cache around
    SF 15, which is where the thrashing effects start."""
    from repro.harness.experiments import FULL_CONFIG

    footprints = sf_series(scale_sweep, "footprint_gib", "cpu_only")
    cache_gib = FULL_CONFIG.gpu_cache_bytes / (1 << 30)
    assert footprints[5] < cache_gib
    assert footprints[15] > cache_gib
    # footprint grows linearly with SF
    assert footprints[30] == pytest.approx(2 * footprints[15], rel=0.1)


# ---------------------------------------------------------------------------
# Figure 17 (selected queries at SF 30)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sf30_latencies():
    result = E.figure17(repetitions=1)
    table = {}
    for row in result.rows:
        table.setdefault(row["query"], {})[row["strategy"]] = row["seconds"]
    return table


def test_fig17_gpu_only_slows_every_query(sf30_latencies):
    for query, row in sf30_latencies.items():
        assert row["gpu_only"] > row["cpu_only"], query


def test_fig17_critical_path_never_slower_than_cpu_only(sf30_latencies):
    """Fig. 17: "Critical Path is always as fast as the CPU-Only
    approach" — it detects the degradation instead of blindly using the
    GPU.  (Our Critical Path estimates cardinalities by sampling, so it
    sometimes finds *faster* hybrid plans than the paper's, which
    stayed fully on the CPU at SF 30.)"""
    for query, row in sf30_latencies.items():
        assert row["critical_path"] <= row["cpu_only"] * 1.15, query


def test_fig17_high_selectivity_queries_accelerate(sf30_latencies):
    """Fig. 17: Q3.4-style high-selectivity queries gain up to ~2.5x
    under Data-Driven Chopping."""
    q34 = sf30_latencies["Q3.4"]
    assert q34["cpu_only"] / q34["data_driven_chopping"] > 1.8


def test_fig17_low_selectivity_queries_unharmed(sf30_latencies):
    """Fig. 17: low-selectivity queries see little impact."""
    for query in ("Q1.1", "Q2.1", "Q3.1", "Q4.1"):
        row = sf30_latencies[query]
        assert row["data_driven_chopping"] <= row["cpu_only"] * 1.25, query


# ---------------------------------------------------------------------------
# Figures 18, 19, 20 (full workloads, parallel users)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def full_users_sweep():
    return E.benchmark_users_sweep(
        benchmark="ssb", users=(1, 20), repetitions=2,
        strategies=("gpu_only", "chopping", "data_driven_chopping"),
    )


def test_fig18_chopping_beats_gpu_only_under_parallel_load(full_users_sweep):
    gpu = series_of(full_users_sweep, "seconds", "gpu_only")
    ddc = series_of(full_users_sweep, "seconds", "data_driven_chopping")
    assert ddc[20] < gpu[20]


def test_fig19_chopping_reduces_transfer_io(full_users_sweep):
    """Fig. 19: Data-Driven Chopping reduces CPU->GPU transfers by a
    large factor (48x in the paper)."""
    gpu = series_of(full_users_sweep, "h2d_seconds", "gpu_only")
    ddc = series_of(full_users_sweep, "h2d_seconds", "data_driven_chopping")
    assert gpu[20] > 10 * max(ddc[20], 1e-9)


def test_fig20_wasted_time_grows_with_users_and_chopping_removes_it(
    full_users_sweep,
):
    gpu = series_of(full_users_sweep, "wasted_seconds", "gpu_only")
    chop = series_of(full_users_sweep, "wasted_seconds", "chopping")
    assert gpu[20] > gpu[1]
    assert gpu[20] > 5 * max(chop[20], 1e-9)


# ---------------------------------------------------------------------------
# Figures 22 / 23 (engine comparison) and 24 (LFU vs LRU)
# ---------------------------------------------------------------------------

def test_fig22_both_engines_accelerate_on_gpu():
    result = E.figure22(repetitions=1)
    table = {}
    for row in result.rows:
        table.setdefault((row["engine"], row["backend"]), {})[
            row["query"]
        ] = row["seconds"]
    for engine in ("cogadb", "ocelot"):
        cpu = table[(engine, "cpu")]
        gpu = table[(engine, "gpu")]
        accelerated = sum(gpu[q] < cpu[q] for q in cpu)
        assert accelerated >= len(cpu) - 1, engine


def test_fig23_ocelot_cpu_faster_cogadb_competitive():
    """App. A: Ocelot's CPU backend is faster on most SSB queries, the
    GPU backends are comparable."""
    result = E.figure23(repetitions=1)
    table = {}
    for row in result.rows:
        table.setdefault((row["engine"], row["backend"]), {})[
            row["query"]
        ] = row["seconds"]
    cogadb_cpu = table[("cogadb", "cpu")]
    ocelot_cpu = table[("ocelot", "cpu")]
    faster = sum(ocelot_cpu[q] < cogadb_cpu[q] for q in cogadb_cpu)
    assert faster >= len(cogadb_cpu) * 0.7
    cogadb_gpu = table[("cogadb", "gpu")]
    ocelot_gpu = table[("ocelot", "gpu")]
    for query in cogadb_gpu:
        ratio = cogadb_gpu[query] / ocelot_gpu[query]
        assert 0.5 < ratio < 2.0, query


def test_fig24_policies_similar_and_improving_with_cache():
    """App. E: execution times improve as the cache fraction grows, the
    placement policy itself has only minor impact."""
    result = E.figure24(fractions=(0.0, 0.6, 0.8), repetitions=1)
    series = dict(result.series("cache_fraction", "seconds", "policy"))
    lru = dict(series["lru"])
    lfu = dict(series["lfu"])
    for policy_series in (lru, lfu):
        assert policy_series[0.8] < policy_series[0.0]
    # "the data placement strategy itself has only a minor impact"
    assert lfu[0.8] == pytest.approx(lru[0.8], rel=0.25)


# ---------------------------------------------------------------------------
# TPC-H robustness and the worst-case-latency goal (Sec. 1 / 6.3)
# ---------------------------------------------------------------------------

def test_fig14_tpch_robustness():
    """Fig. 14(b): the same robustness holds on the TPC-H workload."""
    sweep = E.scale_factor_sweep(
        benchmark="tpch", scale_factors=(5, 30), repetitions=1,
        strategies=("cpu_only", "gpu_only", "data_driven_chopping"),
    )
    series = dict(sweep.series("scale_factor", "seconds", "strategy"))
    cpu = dict(series["cpu_only"])
    gpu = dict(series["gpu_only"])
    ddc = dict(series["data_driven_chopping"])
    assert gpu[30] > cpu[30]          # GPU-only collapses at scale
    assert ddc[30] <= cpu[30] * 1.15  # DD-Chopping stays robust
    assert ddc[30] < gpu[30]


def test_worst_case_latency_goal():
    """Sec. 1: 'The main benefit of our approaches lies in optimizing
    the worst-case execution time' — the p99 latency under 20 users is
    better with Data-Driven Chopping than with a naive GPU execution."""
    database = E.ssb_database(10)
    from repro.harness.runner import run_workload
    from repro.workloads import ssb

    queries = ssb.workload(database)
    tails = {}
    for strategy in ("gpu_only", "data_driven_chopping"):
        run = run_workload(database, queries, strategy,
                           config=E.FULL_CONFIG, users=20, repetitions=2)
        tails[strategy] = run.metrics.latency_percentile(0.99)
    assert tails["data_driven_chopping"] < tails["gpu_only"]
