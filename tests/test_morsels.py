"""Fused morsel-driven execution and shared-memory parallel columns.

Covers the morsel tentpole end to end:

* fused SSB/TPC-H batches are byte-identical to the reference engine
  across morsel sizes, including a hypothesis sweep of random
  join/group-by queries;
* the shared-memory column store round-trips a database (export →
  attach) with read-only zero-copy views and tears segments down with
  ``clear_database_caches``;
* :class:`MorselPool` answers every workload query identically to
  sequential execution (payload *and* sizing metadata) and degrades to
  an in-process fallback when workers fail;
* the fused warm-up composes with fault injection and the query
  lifecycle without changing a simulated timing or a result byte;
* MetricsCollector surfaces the morsel counters; SystemConfig
  validates and round-trips the knobs.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Planner, kernels, morsel, plan_cache
from repro.engine.execution import execute_functional
from repro.engine.operators import PhysicalPlan, ScanSelect
from repro.faults import FaultConfig
from repro.harness import experiments as E
from repro.harness.runner import run_workload
from repro.hardware import SystemConfig
from repro.sql import bind
from repro.storage import ColumnType, Database, shm
from repro.workloads import ssb, tpch

FORK_OK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    """Kernels on, plan cache off (every execution must re-run), fused
    path off unless a test turns it on."""
    plan_cache.enable(False)
    kernels.enable(True)
    morsel.enable(False)
    morsel.reset_stats()
    yield
    plan_cache.enable(True)
    kernels.enable(True)
    morsel.enable(False)
    morsel.set_morsel_rows(None)


def _batch(database, queries):
    return {
        query.name: execute_functional(
            query.instantiate(), database).payload.row_tuples()
        for query in queries
    }


# ---------------------------------------------------------------------------
# Byte identity: fused vs reference engine
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("module,fixture", [(ssb, "ssb_db"),
                                            (tpch, "tpch_db")])
@pytest.mark.parametrize("rows_per_morsel", [1000, 1_000_000_000])
def test_fused_workload_identity(module, fixture, rows_per_morsel, request):
    db = request.getfixturevalue(fixture)
    queries = module.workload(db)
    reference = _batch(db, queries)
    with morsel.active(rows_per_morsel):
        fused = _batch(db, queries)
    assert fused == reference
    assert morsel.snapshot_stats()["fused_queries"] > 0


def test_fused_ssb_zero_declines(ssb_db):
    """Every SSB query fuses — the benchmark's speedup covers them all."""
    with morsel.active():
        _batch(ssb_db, ssb.workload(ssb_db))
    stats = morsel.snapshot_stats()
    assert stats["declined_queries"] == 0
    assert stats["fused_queries"] == len(ssb.QUERIES)
    assert stats["fused_operators"] > stats["fused_queries"]


def test_unfusable_plan_declines_cleanly(ssb_db):
    """A plan without a breaker is declined, never wrongly fused."""
    plan = PhysicalPlan(ScanSelect("lineorder"), name="bare_scan")
    with pytest.raises(morsel.Decline):
        morsel.build(plan, ssb_db)
    # ... and the execution path silently falls back:
    with morsel.active():
        result = execute_functional(
            PhysicalPlan(ScanSelect("lineorder"), name="bare_scan2"),
            ssb_db)
    assert result.actual_rows == ssb_db.table("lineorder").actual_rows


# ---------------------------------------------------------------------------
# Hypothesis: random join/group-by queries, morsels on vs off
# ---------------------------------------------------------------------------

def _rand_db(seed):
    rng = np.random.default_rng(seed)
    db = Database("rand{}".format(seed))
    n = 3000
    fact = db.create_table("f", nominal_rows=100_000)
    fact.add_column("fk", ColumnType.INT32, rng.integers(1, 11, n))
    fact.add_column("x", ColumnType.INT32, rng.integers(-20, 21, n))
    fact.add_column("y", ColumnType.INT32, rng.integers(0, 100, n))
    dim = db.create_table("d", nominal_rows=10)
    dim.add_column("id", ColumnType.INT32, np.arange(1, 11))
    dim.add_column("w", ColumnType.INT32, rng.integers(0, 5, 10))
    return db


RAND_DBS = {seed: _rand_db(seed) for seed in range(2)}

TEMPLATES = (
    "select w, sum(x), count(*) from f, d where f.fk = d.id and {} "
    "group by w",
    "select sum(y), min(x), max(x) from f where {}",
    "select w, count(*) from f, d where f.fk = d.id and {} group by w",
)


@given(seed=st.integers(0, 1),
       template=st.sampled_from(TEMPLATES),
       op=st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
       literal=st.integers(-25, 105),
       rows_per_morsel=st.sampled_from([64, 1000, 65536, 1_000_000_000]))
@settings(max_examples=40, deadline=None)
def test_random_queries_identical_across_morsel_sizes(
        seed, template, op, literal, rows_per_morsel):
    db = RAND_DBS[seed]
    sql = template.format("y {} {}".format(op, literal))
    plan_cache.enable(False)
    kernels.enable(True)

    def run():
        plan = Planner(db).plan(bind(sql, db, name="rand"))
        result = execute_functional(plan, db)
        return (result.payload.row_tuples(), result.actual_rows,
                result.nominal_rows, result.row_width_bytes)

    morsel.enable(False)
    reference = run()
    with morsel.active(rows_per_morsel):
        fused = run()
    assert fused == reference, sql


# ---------------------------------------------------------------------------
# Shared-memory column store
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not shm.available(), reason="no shared memory")
def test_shm_roundtrip_and_cleanup():
    db = ssb.generate(scale_factor=0.01, data_scale=0.01, seed=5)
    manifest = shm.export_database(db)
    assert shm.export_database(db) is manifest  # memoised
    assert shm.export_count(db) == 1

    attached = shm.attach_database(manifest)
    assert attached.name == db.name
    for table in db.tables:
        twin = attached.table(table.name)
        assert twin.actual_rows == table.actual_rows
        assert twin.nominal_rows == table.nominal_rows
        for column in table.columns:
            view = twin.column(column.name).values
            np.testing.assert_array_equal(view, column.values)
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 0
    for table in attached.tables:
        for column in table.columns:
            if column.dictionary is not None:
                assert column.dictionary == (
                    db.table(table.name).column(column.name).dictionary)

    shm.detach_all()
    from repro.harness.experiments import clear_database_caches
    clear_database_caches()
    assert shm.export_count() == 0


@pytest.mark.skipif(not shm.available(), reason="no shared memory")
def test_shm_attached_database_answers_queries():
    db = ssb.generate(scale_factor=0.01, data_scale=0.01, seed=6)
    queries = ssb.workload(db)
    reference = _batch(db, queries)
    attached = shm.attach_database(shm.export_database(db))
    try:
        assert _batch(attached, ssb.workload(attached)) == reference
        with morsel.active(1000):
            assert _batch(attached, ssb.workload(attached)) == reference
    finally:
        kernels.invalidate(attached)
        shm.invalidate(db)
        shm.detach_all()


# ---------------------------------------------------------------------------
# MorselPool: intra-query parallelism
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not (FORK_OK and shm.available()),
                    reason="needs fork + shared memory")
def test_morsel_pool_matches_sequential():
    from repro.harness.parallel import MorselPool

    db = ssb.generate(scale_factor=0.01, data_scale=0.02, seed=11)
    queries = ssb.workload(db)
    expected = {}
    for query in queries:
        result = execute_functional(query.instantiate(), db)
        expected[query.name] = (result.payload.row_tuples(),
                                result.actual_rows, result.nominal_rows,
                                result.row_width_bytes)
    try:
        with MorselPool(db, queries, workload="ssb", jobs=2) as pool:
            pool.warm()
            results = pool.run_queries()
            assert pool.fallbacks == 0
    finally:
        shm.invalidate(db)
    got = {
        name: (result.payload.row_tuples(), result.actual_rows,
               result.nominal_rows, result.row_width_bytes)
        for name, result in results.items()
    }
    assert got == expected


@pytest.mark.skipif(not (FORK_OK and shm.available()),
                    reason="needs fork + shared memory")
def test_morsel_pool_falls_back_on_worker_failure():
    """A worker-*reported* error (engine bug, mid-run decline) falls
    back in-process; process deaths are self-healed, not fallen back."""
    from repro.harness import parallel
    from repro.harness.parallel import MorselPool

    db = ssb.generate(scale_factor=0.01, data_scale=0.01, seed=12)
    queries = ssb.workload(db)
    reference = _batch(db, queries)
    try:
        with MorselPool(db, queries, workload="ssb", jobs=2) as pool:
            def boom(name, pipe, tasks):
                raise parallel._PoolTaskError("worker lost")

            pool._run_pooled = boom
            results = pool.run_queries()
            assert pool.fallbacks == len(queries)
    finally:
        shm.invalidate(db)
    got = {name: result.payload.row_tuples()
           for name, result in results.items()}
    assert got == reference


@pytest.mark.skipif(not (FORK_OK and shm.available()),
                    reason="needs fork + shared memory")
def test_morsel_pool_survives_worker_kill():
    """SIGKILLing a live worker re-queues its chunks and respawns —
    results stay byte-identical with ZERO fallbacks."""
    import os
    import signal

    from repro.harness.parallel import MorselPool

    db = ssb.generate(scale_factor=0.01, data_scale=0.02, seed=13)
    queries = ssb.workload(db)
    reference = _batch(db, queries)
    try:
        with MorselPool(db, queries, workload="ssb", jobs=2) as pool:
            pool.warm()
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            results = pool.run_queries()
            assert pool.fallbacks == 0
            assert pool.degraded is None
            assert pool.counters["worker_restarts"] >= 1
    finally:
        shm.invalidate(db)
    got = {name: result.payload.row_tuples()
           for name, result in results.items()}
    assert got == reference


# ---------------------------------------------------------------------------
# run_workload: composition with faults and the query lifecycle
# ---------------------------------------------------------------------------

def _sim_run(db, config, **kwargs):
    plan_cache.invalidate(db)
    run = run_workload(db, ssb.workload(db), "runtime", config=config,
                       users=2, repetitions=1, collect_results=True,
                       **kwargs)
    results = {name: tuple(table.row_tuples())
               for name, table in run.results.items()}
    return run, results


def test_run_workload_morsels_identical_simulation():
    db = E.ssb_database(1)
    base_run, base_results = _sim_run(db, E.FULL_CONFIG)
    fused_run, fused_results = _sim_run(db, E.FULL_CONFIG.with_morsels(True))
    assert fused_results == base_results
    assert fused_run.seconds == base_run.seconds
    assert fused_run.metrics.fused_queries > 0


def test_run_workload_morsels_with_faults_identical():
    db = E.ssb_database(1)
    spec = FaultConfig.uniform(0.05, seed=7)
    base_run, base_results = _sim_run(db, E.FULL_CONFIG, faults=spec)
    fused_run, fused_results = _sim_run(
        db, E.FULL_CONFIG.with_morsels(True), faults=spec)
    assert fused_results == base_results
    assert fused_run.fault_digest == base_run.fault_digest
    assert fused_run.seconds == base_run.seconds


def test_run_workload_morsels_with_lifecycle_identical():
    from repro.engine.execution import LifecycleConfig

    db = E.ssb_database(1)
    lifecycle = LifecycleConfig(max_inflight=2)
    base_run, base_results = _sim_run(db, E.FULL_CONFIG,
                                      lifecycle=lifecycle)
    fused_run, fused_results = _sim_run(
        db, E.FULL_CONFIG.with_morsels(True), lifecycle=lifecycle)
    assert fused_results == base_results
    assert fused_run.seconds == base_run.seconds


# ---------------------------------------------------------------------------
# Metrics and configuration
# ---------------------------------------------------------------------------

def test_metrics_surface_morsel_counters():
    db = E.ssb_database(1)
    plan_cache.invalidate(db)
    run = run_workload(db, ssb.workload(db), "runtime",
                       config=E.FULL_CONFIG.with_morsels(True))
    summary = run.metrics.morsel_summary()
    assert summary["fused_queries"] == len(ssb.QUERIES)
    assert summary["morsels_executed"] >= summary["fused_queries"]
    assert summary["fused_chain_length"] > 1.0
    assert summary["declined_queries"] == 0

    plan_cache.invalidate(db)
    baseline = run_workload(db, ssb.workload(db), "runtime",
                            config=E.FULL_CONFIG)
    assert not any(baseline.metrics.morsel_summary().values())


def test_system_config_morsel_knobs():
    config = SystemConfig()
    assert config.morsels is False
    fused = config.with_morsels(True, morsel_rows=8192)
    assert fused.morsels and fused.morsel_rows == 8192
    assert fused.with_morsels(False).morsels is False
    with pytest.raises(ValueError):
        SystemConfig(morsel_rows=0)


def test_morsel_rows_override():
    assert morsel.morsel_rows() == morsel.DEFAULT_MORSEL_ROWS
    with morsel.active(512):
        assert morsel.morsel_rows() == 512
        assert morsel.enabled()
    assert morsel.morsel_rows() == morsel.DEFAULT_MORSEL_ROWS
    assert not morsel.enabled()
