"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURE_DRIVERS, build_parser, main


def test_strategies_command(capsys):
    assert main(["strategies"]) == 0
    out = capsys.readouterr().out
    assert "data_driven_chopping" in out
    assert "critical_path" in out


def test_query_command(capsys):
    code = main([
        "query",
        "select count(*) as n from lineorder where lo_discount > 8",
        "--scale-factor", "1", "--strategy", "cpu_only",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 rows" in out
    assert "simulated" in out


def test_run_command(capsys):
    code = main([
        "run", "--scale-factor", "1", "--users", "2",
        "--repetitions", "1", "--strategy", "chopping",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "workload_seconds" in out
    assert "Q4.3" in out


def test_run_command_multi_gpu(capsys):
    code = main([
        "run", "--scale-factor", "1", "--repetitions", "1",
        "--gpus", "2", "--strategy", "data_driven_chopping",
    ])
    assert code == 0
    assert "workload_seconds" in capsys.readouterr().out


def test_figures_selected(capsys):
    code = main(["figures", "fig16", "--fast"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 16" in out
    assert "done in" in out


def test_figures_unknown_id(capsys):
    assert main(["figures", "fig99"]) == 1
    assert "unknown figure" in capsys.readouterr().out


def test_figure_driver_table_covers_all_paper_figures():
    expected = {
        "fig01", "fig02", "fig03", "fig05", "fig06", "fig07", "fig09",
        "fig12", "fig13", "fig14a", "fig14b", "fig15a", "fig15b",
        "fig16", "fig17", "fig18a", "fig18b", "fig19", "fig20", "fig21",
        "fig22", "fig23", "fig24", "fig25",
    }
    assert expected <= set(FIGURE_DRIVERS)


def test_compress_command(capsys):
    code = main(["compress", "--scale-factor", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "lineorder.lo_discount" in out
    assert "total:" in out


def test_serve_command(capsys):
    code = main([
        "serve", "--scale-factor", "0.01", "--data-scale", "0.01",
        "--duration", "2", "--rate", "100", "--arrivals", "diurnal",
        "--deadline", "0.05", "--target", "0.02",
        "--mutation-interval", "1",
        "--faults", "pcie=0.02,kernel=0.02,seed=5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "per-class SLO ledger" in out
    assert "premium" in out and "best_effort" in out
    assert "byte-identical to reference: True" in out
    assert "conservation (arrivals == completed+shed+cancelled): True" in out
    assert "epochs advanced:" in out


def test_parser_rejects_bad_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--strategy", "warp-drive"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
