"""Unit tests for the HyPE layer: observations, learned cost models,
load tracking."""

import pytest

from repro.hardware.calibration import COGADB_PROFILE, GIB
from repro.hardware.processor import ProcessorKind
from repro.hype import LearnedCostModel, LoadTracker, ObservationStore


class TestObservationStore:
    def test_add_and_get(self):
        store = ObservationStore()
        store.add("selection", ProcessorKind.GPU, 1000.0, 0.5)
        observations = store.get("selection", ProcessorKind.GPU)
        assert len(observations) == 1
        assert observations[0].input_bytes == 1000.0
        assert observations[0].seconds == 0.5

    def test_keys_are_per_processor(self):
        store = ObservationStore()
        store.add("selection", ProcessorKind.GPU, 1.0, 1.0)
        store.add("selection", ProcessorKind.CPU, 1.0, 2.0)
        assert store.count("selection", ProcessorKind.GPU) == 1
        assert store.count("selection", ProcessorKind.CPU) == 1
        assert len(store.keys()) == 2

    def test_bounded_history_keeps_most_recent(self):
        store = ObservationStore(max_observations_per_key=10)
        for i in range(25):
            store.add("join", ProcessorKind.CPU, float(i), float(i))
        observations = store.get("join", ProcessorKind.CPU)
        assert len(observations) == 10
        assert observations[0].input_bytes == 15.0
        assert observations[-1].input_bytes == 24.0

    def test_get_missing_key_empty(self):
        store = ObservationStore()
        assert store.get("sort", ProcessorKind.GPU) == []

    def test_clear(self):
        store = ObservationStore()
        store.add("sort", ProcessorKind.GPU, 1.0, 1.0)
        store.clear()
        assert store.count("sort", ProcessorKind.GPU) == 0


class TestLearnedCostModel:
    def test_fallback_to_analytical_profile(self):
        model = LearnedCostModel(COGADB_PROFILE)
        expected = COGADB_PROFILE.compute_seconds(
            "selection", ProcessorKind.GPU, GIB
        )
        assert model.estimate("selection", ProcessorKind.GPU, GIB) == expected
        assert not model.is_learned("selection", ProcessorKind.GPU)

    def test_learns_linear_relationship(self):
        model = LearnedCostModel(COGADB_PROFILE, min_observations=4,
                                 refit_interval=1)
        # true model: t = 0.1 + 2e-9 * bytes (very unlike the profile)
        for size in (1e6, 2e6, 4e6, 8e6, 16e6):
            model.observe("selection", ProcessorKind.CPU, size,
                          0.1 + 2e-9 * size)
        assert model.is_learned("selection", ProcessorKind.CPU)
        estimate = model.estimate("selection", ProcessorKind.CPU, 10e6)
        assert estimate == pytest.approx(0.1 + 2e-9 * 10e6, rel=1e-6)

    def test_degenerate_constant_inputs(self):
        model = LearnedCostModel(COGADB_PROFILE, min_observations=3,
                                 refit_interval=1)
        for _ in range(5):
            model.observe("join", ProcessorKind.GPU, 1000.0, 0.25)
        assert model.estimate("join", ProcessorKind.GPU, 1000.0) == (
            pytest.approx(0.25)
        )

    def test_estimates_never_negative(self):
        model = LearnedCostModel(COGADB_PROFILE, min_observations=2,
                                 refit_interval=1)
        # negative-slope observations (decreasing times)
        model.observe("sort", ProcessorKind.CPU, 1e6, 1.0)
        model.observe("sort", ProcessorKind.CPU, 2e6, 0.1)
        assert model.estimate("sort", ProcessorKind.CPU, 1e9) >= 0.0

    def test_refit_interval_batches_work(self):
        model = LearnedCostModel(COGADB_PROFILE, min_observations=2,
                                 refit_interval=100)
        model.observe("sort", ProcessorKind.CPU, 1e6, 1.0)
        model.observe("sort", ProcessorKind.CPU, 2e6, 2.0)
        # first fit happened (no previous fit existed)
        assert model.is_learned("sort", ProcessorKind.CPU)
        first = model.estimate("sort", ProcessorKind.CPU, 4e6)
        # more observations within the interval do not refit yet
        for _ in range(10):
            model.observe("sort", ProcessorKind.CPU, 4e6, 100.0)
        assert model.estimate("sort", ProcessorKind.CPU, 4e6) == first

    def test_separate_models_per_processor(self):
        model = LearnedCostModel(COGADB_PROFILE, min_observations=2,
                                 refit_interval=1)
        for size in (1e6, 2e6, 3e6):
            model.observe("selection", ProcessorKind.CPU, size, size * 1e-8)
            model.observe("selection", ProcessorKind.GPU, size, size * 1e-9)
        cpu = model.estimate("selection", ProcessorKind.CPU, 5e6)
        gpu = model.estimate("selection", ProcessorKind.GPU, 5e6)
        assert cpu == pytest.approx(10 * gpu, rel=1e-3)


class TestLoadTracker:
    def test_assign_and_finish(self):
        load = LoadTracker()
        load.assign("gpu", 2.0)
        load.assign("gpu", 3.0)
        assert load.estimated_completion("gpu") == pytest.approx(5.0)
        load.finish("gpu", 2.0)
        assert load.estimated_completion("gpu") == pytest.approx(3.0)

    def test_unknown_processor_is_idle(self):
        load = LoadTracker()
        assert load.estimated_completion("tpu") == 0.0

    def test_never_goes_negative(self):
        load = LoadTracker()
        load.assign("cpu", 1.0)
        load.finish("cpu", 5.0)
        assert load.estimated_completion("cpu") == 0.0

    def test_reset(self):
        load = LoadTracker()
        load.assign("cpu", 1.0)
        load.reset()
        assert load.estimated_completion("cpu") == 0.0
