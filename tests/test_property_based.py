"""Property-based tests (hypothesis) for the core data structures and
operator kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expressions import (
    Aggregate,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
)
from repro.engine.operators import (
    GroupByAggregate,
    HashJoin,
    ScanSelect,
    Sort,
    Materialize,
)
from repro.hardware import DeviceCache, DeviceHeap, DeviceOutOfMemory
from repro.sim import Environment
from repro.storage import ColumnType, Database

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

small_ints = st.integers(min_value=-50, max_value=50)
value_arrays = st.lists(small_ints, min_size=1, max_size=200)


def build_db(values_a, values_b, keys):
    db = Database()
    n = len(values_a)
    fact = db.create_table("f", nominal_rows=n * 1000)
    fact.add_column("a", ColumnType.INT32,
                    np.array(values_a, dtype=np.int32))
    fact.add_column("b", ColumnType.INT32,
                    np.array(values_b, dtype=np.int32))
    fact.add_column("k", ColumnType.INT32, np.array(keys, dtype=np.int32))
    return db


@st.composite
def fact_tables(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    values_a = draw(st.lists(small_ints, min_size=n, max_size=n))
    values_b = draw(st.lists(small_ints, min_size=n, max_size=n))
    keys = draw(st.lists(st.integers(0, 8), min_size=n, max_size=n))
    return build_db(values_a, values_b, keys)


# ---------------------------------------------------------------------------
# selection kernel
# ---------------------------------------------------------------------------

@given(db=fact_tables(), low=small_ints, high=small_ints)
@settings(max_examples=60, deadline=None)
def test_selection_matches_oracle(db, low, high):
    predicate = Between(ColumnRef("f", "a"), Literal(low), Literal(high))
    result = ScanSelect("f", predicate).run(db, [])
    values = db.column("f.a").values
    oracle = np.flatnonzero((values >= low) & (values <= high))
    assert np.array_equal(result.payload.positions("f"), oracle)


@given(db=fact_tables(), threshold=small_ints)
@settings(max_examples=60, deadline=None)
def test_selection_tids_sorted_and_unique(db, threshold):
    predicate = Comparison("<", ColumnRef("f", "a"), Literal(threshold))
    result = ScanSelect("f", predicate).run(db, [])
    tids = result.payload.positions("f")
    assert np.array_equal(tids, np.unique(tids))


@given(db=fact_tables(), values=st.lists(small_ints, max_size=5))
@settings(max_examples=40, deadline=None)
def test_in_list_matches_python_in(db, values):
    predicate = InList(ColumnRef("f", "a"), values)
    result = ScanSelect("f", predicate).run(db, [])
    oracle = [
        i for i, v in enumerate(db.column("f.a").values) if int(v) in values
    ]
    assert result.payload.positions("f").tolist() == oracle


# ---------------------------------------------------------------------------
# join kernel
# ---------------------------------------------------------------------------

@st.composite
def join_inputs(draw):
    n_left = draw(st.integers(1, 80))
    n_right = draw(st.integers(1, 40))
    left_keys = draw(st.lists(st.integers(0, 10), min_size=n_left,
                              max_size=n_left))
    right_keys = draw(st.lists(st.integers(0, 10), min_size=n_right,
                               max_size=n_right))
    db = Database()
    left = db.create_table("l")
    left.add_column("k", ColumnType.INT32, np.array(left_keys, dtype=np.int32))
    right = db.create_table("r")
    right.add_column("k", ColumnType.INT32,
                     np.array(right_keys, dtype=np.int32))
    return db


@given(db=join_inputs())
@settings(max_examples=60, deadline=None)
def test_join_matches_nested_loop_oracle(db):
    join = HashJoin(
        ScanSelect("l"), ScanSelect("r"),
        ColumnRef("l", "k"), ColumnRef("r", "k"),
    )
    left = join.children[0].run(db, [])
    right = join.children[1].run(db, [])
    result = join.run(db, [left, right])
    left_keys = db.column("l.k").values
    right_keys = db.column("r.k").values
    oracle = sorted(
        (i, j)
        for i in range(len(left_keys))
        for j in range(len(right_keys))
        if left_keys[i] == right_keys[j]
    )
    got = sorted(
        zip(
            result.payload.positions("l").tolist(),
            result.payload.positions("r").tolist(),
        )
    )
    assert got == oracle


# ---------------------------------------------------------------------------
# aggregation kernel
# ---------------------------------------------------------------------------

@given(db=fact_tables())
@settings(max_examples=60, deadline=None)
def test_groupby_sum_matches_python_dict(db):
    scan = ScanSelect("f")
    scanned = scan.run(db, [])
    op = GroupByAggregate(
        scan, [ColumnRef("f", "k")],
        [Aggregate("sum", ColumnRef("f", "a"), "s"),
         Aggregate("count", Literal(1), "n")],
    )
    frame = op.run(db, [scanned]).payload
    keys = db.column("f.k").values
    values = db.column("f.a").values
    oracle_sum, oracle_count = {}, {}
    for k, v in zip(keys, values):
        oracle_sum[int(k)] = oracle_sum.get(int(k), 0) + int(v)
        oracle_count[int(k)] = oracle_count.get(int(k), 0) + 1
    got = dict(zip(frame.column("k").tolist(), frame.column("s").tolist()))
    counts = dict(zip(frame.column("k").tolist(), frame.column("n").tolist()))
    assert got == oracle_sum
    assert counts == oracle_count


@given(db=fact_tables())
@settings(max_examples=40, deadline=None)
def test_groupby_min_max_bound_avg(db):
    scan = ScanSelect("f")
    scanned = scan.run(db, [])
    op = GroupByAggregate(
        scan, [ColumnRef("f", "k")],
        [Aggregate("min", ColumnRef("f", "a"), "lo"),
         Aggregate("avg", ColumnRef("f", "a"), "mid"),
         Aggregate("max", ColumnRef("f", "a"), "hi")],
    )
    frame = op.run(db, [scanned]).payload
    assert (frame.column("lo") <= frame.column("mid") + 1e-9).all()
    assert (frame.column("mid") <= frame.column("hi") + 1e-9).all()


# ---------------------------------------------------------------------------
# sort kernel
# ---------------------------------------------------------------------------

@given(db=fact_tables(), ascending=st.booleans())
@settings(max_examples=40, deadline=None)
def test_sort_is_a_permutation_in_order(db, ascending):
    scan = ScanSelect("f")
    scanned = scan.run(db, [])
    mat = Materialize(scan, [("a", ColumnRef("f", "a")),
                             ("b", ColumnRef("f", "b"))])
    frame_result = mat.run(db, [scanned])
    sort = Sort(mat, [("a", ascending)])
    sorted_frame = sort.run(db, [frame_result]).payload
    values = sorted_frame.column("a")
    if ascending:
        assert (np.diff(values) >= 0).all()
    else:
        assert (np.diff(values) <= 0).all()
    assert sorted(values.tolist()) == sorted(
        db.column("f.a").values.tolist()
    )


# ---------------------------------------------------------------------------
# device heap
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(1, 10_000),
    requests=st.lists(st.integers(0, 4000), max_size=40),
)
@settings(max_examples=80, deadline=None)
def test_heap_accounting_invariants(capacity, requests):
    heap = DeviceHeap(capacity)
    live = []
    for nbytes in requests:
        try:
            live.append(heap.allocate(nbytes))
        except DeviceOutOfMemory:
            # failure must not change accounting
            assert heap.used == sum(a.nbytes for a in live)
        assert 0 <= heap.used <= heap.capacity
        assert heap.used == sum(a.nbytes for a in live)
    for allocation in live:
        allocation.free()
    assert heap.used == 0


# ---------------------------------------------------------------------------
# device cache
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(1, 1000),
    operations=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 400)), max_size=60
    ),
    policy=st.sampled_from(["lru", "lfu"]),
)
@settings(max_examples=80, deadline=None)
def test_cache_never_exceeds_capacity(capacity, operations, policy):
    time = [0.0]
    cache = DeviceCache(capacity, policy=policy, clock=lambda: time[0])
    for key, nbytes in operations:
        time[0] += 1.0
        cache.admit("col{}".format(key), nbytes)
        assert 0 <= cache.used <= cache.capacity
        assert cache.used == sum(
            cache.entry(k).nbytes for k in cache.keys
        )


@given(
    operations=st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 100)), min_size=1,
        max_size=40
    ),
)
@settings(max_examples=60, deadline=None)
def test_cache_pinned_entries_survive(operations):
    time = [0.0]
    cache = DeviceCache(300, policy="lru", clock=lambda: time[0])
    assert cache.admit("pinned", 100, pinned=True)
    for key, nbytes in operations:
        time[0] += 1.0
        cache.admit("col{}".format(key), nbytes)
        assert "pinned" in cache


# ---------------------------------------------------------------------------
# DES kernel
# ---------------------------------------------------------------------------

@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                       max_size=50))
@settings(max_examples=60, deadline=None)
def test_des_time_is_monotonic_and_ends_at_max(delays):
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(delay))
    env.run()
    assert observed == sorted(observed)
    assert env.now == pytest.approx(max(delays))
    assert len(observed) == len(delays)


@given(works=st.lists(st.floats(0.001, 10, allow_nan=False), min_size=1,
                      max_size=20))
@settings(max_examples=60, deadline=None)
def test_processor_sharing_conserves_work(works):
    """All jobs submitted at t=0 finish by exactly sum(works)."""
    from repro.hardware.processor import Processor, ProcessorKind

    env = Environment()
    cpu = Processor(env, "cpu", ProcessorKind.CPU)
    for work in works:
        env.process(cpu.execute(work))
    env.run()
    assert env.now == pytest.approx(sum(works), rel=1e-6)
    assert cpu.active_jobs == 0


# ---------------------------------------------------------------------------
# Algorithm 1 (data placement)
# ---------------------------------------------------------------------------

@given(
    counts=st.lists(st.integers(1, 100), min_size=1, max_size=12),
    capacity_cols=st.floats(0, 14),
)
@settings(max_examples=60, deadline=None)
def test_algorithm1_is_greedy_prefix(counts, capacity_cols):
    from repro.core import DataPlacementManager

    db = Database()
    table = db.create_table("t", nominal_rows=100)
    for i, count in enumerate(counts):
        key = "c{}".format(i)
        table.add_column(key, ColumnType.INT32,
                         np.arange(10, dtype=np.int32))
        for tick in range(count):
            db.statistics.record_access("t.{}".format(key))
    column_nbytes = db.column("t.c0").nominal_bytes
    cache = DeviceCache(int(capacity_cols * column_nbytes))
    manager = DataPlacementManager(db, cache, policy="lfu")
    cached = set(manager.apply_placement())
    ranked = db.statistics.by_frequency()
    # equal-size columns: the cached set is exactly the longest ranked
    # prefix that fits
    expected = set(ranked[: int(capacity_cols)])
    assert cached == {k for k in expected}
    assert cache.used <= cache.capacity
