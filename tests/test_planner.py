"""Unit tests for the strategic optimizer (planner)."""

import pytest

from repro.engine import Planner
from repro.engine.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.engine.operators import (
    GroupByAggregate,
    HashJoin,
    Limit,
    Materialize,
    ScanSelect,
    Sort,
)
from repro.engine.planner import PlanningError
from repro.sql import bind


def test_single_table_plan_shape(toy_db):
    spec = bind("select amount from sales where amount < 10", toy_db)
    plan = Planner(toy_db).plan(spec)
    kinds = [type(op) for op in plan.operators]
    assert kinds == [ScanSelect, Materialize]


def test_join_plan_shape(toy_db):
    spec = bind(
        "select region, sum(amount) as s from sales, store "
        "where skey = id group by region order by s desc limit 2",
        toy_db,
    )
    plan = Planner(toy_db).plan(spec)
    kinds = [type(op) for op in plan.operators]
    assert kinds == [ScanSelect, ScanSelect, HashJoin, GroupByAggregate,
                     Sort, Limit]


def test_probe_side_is_largest_table(toy_db):
    spec = bind(
        "select sum(amount) as s from sales, store where skey = id",
        toy_db,
    )
    plan = Planner(toy_db).plan(spec)
    join = [op for op in plan.operators if isinstance(op, HashJoin)][0]
    assert join.probe_key.table == "sales"
    assert join.build_key.table == "store"


def test_logical_plan_structure(toy_db):
    spec = bind(
        "select region, sum(amount) as s from sales, store "
        "where skey = id group by region order by s limit 1",
        toy_db,
    )
    node = Planner(toy_db).logical_plan(spec)
    assert isinstance(node, LogicalLimit)
    assert isinstance(node.children[0], LogicalSort)
    assert isinstance(node.children[0].children[0], LogicalAggregate)
    join = node.children[0].children[0].children[0]
    assert isinstance(join, LogicalJoin)
    assert isinstance(join.children[0], LogicalScan)
    explained = node.explain()
    assert "Join" in explained and "Aggregate" in explained


def test_selectivity_estimation(toy_db):
    planner = Planner(toy_db)
    from repro.engine.expressions import ColumnRef, Comparison, Literal

    # amount uniform in [1, 100): ~30% below 30
    predicate = Comparison("<", ColumnRef("sales", "amount"), Literal(30))
    estimate = planner.estimate_selectivity("sales", predicate)
    assert 0.15 < estimate < 0.45
    assert planner.estimate_selectivity("sales", None) == 1.0


def test_join_order_prefers_selective_dimensions(ssb_db):
    from repro.workloads import ssb

    planner = Planner(ssb_db)
    spec = bind(ssb.QUERIES["Q3.4"], ssb_db, name="Q3.4")
    plan = planner.plan(spec)
    joins = [op for op in plan.operators if isinstance(op, HashJoin)]
    # greedy ordering: the first build side has the smallest estimated
    # filtered cardinality among the dimensions
    estimates = {
        table: planner.estimate_filtered_rows(table, spec.filters.get(table))
        for table in spec.tables
        if table != "lineorder"
    }
    first_build = joins[0].build_key.table
    assert estimates[first_build] == min(estimates.values())


def test_disconnected_join_graph_rejected(toy_db):
    spec = bind("select amount from sales, store where amount < 5", toy_db)
    # no join edge between the two tables
    with pytest.raises(PlanningError):
        Planner(toy_db).plan(spec)


def test_cyclic_join_edges_rejected(tpch_db):
    sql = (
        "select n_name, sum(l_extendedprice) as s "
        "from customer, orders, lineitem, supplier, nation "
        "where c_custkey = o_custkey and l_orderkey = o_orderkey "
        "and l_suppkey = s_suppkey and s_nationkey = n_nationkey "
        "and c_nationkey = n_nationkey "  # closes a cycle
        "group by n_name"
    )
    spec = bind(sql, tpch_db)
    with pytest.raises(PlanningError):
        Planner(tpch_db).plan(spec)


def test_all_ssb_queries_plan(ssb_db):
    from repro.workloads import ssb

    planner = Planner(ssb_db)
    for name, sql in ssb.QUERIES.items():
        plan = planner.plan(bind(sql, ssb_db, name=name))
        assert plan.operators, name


def test_all_tpch_queries_plan(tpch_db):
    from repro.workloads import tpch

    planner = Planner(tpch_db)
    for name, sql in tpch.QUERIES.items():
        plan = planner.plan(bind(sql, tpch_db, name=name))
        assert plan.operators, name


def test_non_aggregate_query_gets_projection(toy_db):
    spec = bind("select amount, price from sales order by amount", toy_db)
    node = Planner(toy_db).logical_plan(spec)
    assert isinstance(node, LogicalSort)
    assert isinstance(node.children[0], LogicalProject)
