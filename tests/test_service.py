"""Service mode: open-system traffic, fair share, SLOs, epochs, chaos.

Satellite-3 composition coverage for the service harness: fair-share
admission x breakers x process chaos under streaming arrivals, with
the three invariants the ISSUE names spelled out as separate tests —
no tenant starves, epoch-pinned queries stay byte-identical under
concurrent appends, and hedging never double-counts a shed query
(conservation: arrivals == completed + shed + cancelled).
"""

import multiprocessing

import pytest

from repro.metrics import MetricsCollector
from repro.harness.service import (
    BEST_EFFORT,
    DEFAULT_CLASSES,
    PREMIUM,
    STANDARD,
    FairShareAdmission,
    ServiceConfig,
    SLOClass,
    TenantSpec,
    _DiurnalArrivals,
    _Request,
    _TraceArrivals,
    build_tenants,
    run_service,
)
from repro.sim import Environment
from repro.engine.execution import QueryContext
from repro.storage import shm


FAST_QUERIES = ["Q1.1", "Q2.1"]


def small_service(**overrides):
    defaults = dict(
        duration_seconds=1.0, rate=200.0, tenants_per_class=1,
        max_inflight=3, seed=17,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def serve(ssb_db, service, **kwargs):
    kwargs.setdefault("query_names", FAST_QUERIES)
    return run_service(ssb_db, strategy="critical_path",
                       service=service, **kwargs)


# -- configuration validation -----------------------------------------


class TestConfigValidation:
    def test_default_classes_are_ordered_tiers(self):
        assert PREMIUM.weight > STANDARD.weight > BEST_EFFORT.weight
        assert (PREMIUM.deadline_multiplier
                > STANDARD.deadline_multiplier
                > BEST_EFFORT.deadline_multiplier)
        assert len(DEFAULT_CLASSES) == 3

    def test_bad_slo_class(self):
        with pytest.raises(ValueError):
            SLOClass("x", weight=0)
        with pytest.raises(ValueError):
            SLOClass("x", queue_cap=0)
        with pytest.raises(ValueError):
            SLOClass("x", overflow_policy="retry")

    def test_bad_service_config(self):
        with pytest.raises(ValueError):
            ServiceConfig(duration_seconds=0)
        with pytest.raises(ValueError):
            ServiceConfig(arrivals="bursty")
        with pytest.raises(ValueError):
            ServiceConfig(arrivals="trace")  # needs trace_times
        with pytest.raises(ValueError):
            ServiceConfig(global_overload_policy="queue")
        with pytest.raises(ValueError):
            ServiceConfig(diurnal_amplitude=1.5)

    def test_targets_scale_per_class(self):
        service = ServiceConfig(latency_target_seconds=0.1)
        targets = service.targets()
        assert targets["premium"] == pytest.approx(0.4)
        assert targets["standard"] == pytest.approx(0.2)
        assert targets["best_effort"] == pytest.approx(0.1)
        assert ServiceConfig().targets() == {}

    def test_tenant_partition_shares_sum_to_one(self):
        tenants = build_tenants(ServiceConfig(tenants_per_class=3))
        assert len(tenants) == 9
        assert sum(t.share for t in tenants) == pytest.approx(1.0)
        names = {t.name for t in tenants}
        assert "premium-0" in names and "best_effort-2" in names


# -- arrival models ----------------------------------------------------


class TestArrivalModels:
    def test_trace_replays_absolute_times(self):
        import random

        model = _TraceArrivals([0.5, 0.2, 1.0])
        rng = random.Random(0)
        assert model.next_interarrival(0.0, rng) == pytest.approx(0.2)
        assert model.next_interarrival(0.2, rng) == pytest.approx(0.3)
        assert model.next_interarrival(0.5, rng) == pytest.approx(0.5)
        assert model.next_interarrival(1.0, rng) == float("inf")

    def test_diurnal_rate_floor(self):
        model = _DiurnalArrivals(rate=10.0, amplitude=0.99, period=4.0)
        # trough of the sine would drop to 0.1x; the floor holds at 5%
        assert model.rate_at(3.0) >= 0.5
        assert model.rate_at(1.0) == pytest.approx(10.0 * 1.99)


# -- fair-share admission (unit) --------------------------------------


def _tenant(name, slo, index=0):
    return TenantSpec(name=name, index=index, slo=slo, share=0.1)


def _request(env, tenant, arrived_at=0.0):
    qctx = QueryContext(env, "Q1.1", user=tenant.index,
                        tenant=tenant.name, slo_class=tenant.slo.name)
    return _Request(tenant, 0, arrived_at, qctx, None)


class TestFairShareAdmission:
    def test_drr_serves_weighted_shares(self):
        env = Environment()
        metrics = MetricsCollector()
        heavy = _tenant("premium-0", PREMIUM, 0)
        light = _tenant("best_effort-0", BEST_EFFORT, 1)
        fair = FairShareAdmission([heavy, light], quantum=1.0,
                                  starvation_seconds=100.0,
                                  metrics=metrics)
        for _ in range(16):
            fair.offer(_request(env, heavy))
            fair.offer(_request(env, light))
        served = [fair.next_request(0.0).tenant.name for _ in range(10)]
        # 4:1 weights -> premium gets ~4 of every 5 dispatch slots
        assert served.count("premium-0") >= 7
        assert served.count("best_effort-0") >= 1

    def test_starvation_guard_promotes_aged_head(self):
        env = Environment()
        metrics = MetricsCollector()
        heavy = _tenant("premium-0", PREMIUM, 0)
        light = _tenant("best_effort-0", BEST_EFFORT, 1)
        fair = FairShareAdmission([heavy, light], quantum=1.0,
                                  starvation_seconds=5.0,
                                  metrics=metrics)
        fair.offer(_request(env, light, arrived_at=0.0))
        for _ in range(8):
            fair.offer(_request(env, heavy, arrived_at=6.0))
        # at t=6 the best-effort head has waited 6s > 5s: it jumps the
        # premium backlog regardless of deficit state
        first = fair.next_request(6.0)
        assert first.tenant.name == "best_effort-0"
        assert metrics.starvation_promotions == 1

    def test_shed_overflow_policy_at_queue_cap(self):
        env = Environment()
        metrics = MetricsCollector()
        tenant = _tenant("best_effort-0", BEST_EFFORT, 0)
        fair = FairShareAdmission([tenant], quantum=1.0,
                                  starvation_seconds=100.0,
                                  metrics=metrics)
        outcomes = [fair.offer(_request(env, tenant))
                    for _ in range(BEST_EFFORT.queue_cap + 2)]
        assert outcomes.count("queued") == BEST_EFFORT.queue_cap
        assert outcomes.count("shed") == 2
        assert metrics.sheds_by_tenant["best_effort-0"] == 2
        assert metrics.sheds_by_class["best_effort"] == 2

    def test_degrade_overflow_queues_cpu_only(self):
        env = Environment()
        metrics = MetricsCollector()
        tenant = _tenant("standard-0", STANDARD, 0)
        fair = FairShareAdmission([tenant], quantum=1.0,
                                  starvation_seconds=100.0,
                                  metrics=metrics)
        for _ in range(STANDARD.queue_cap):
            assert fair.offer(_request(env, tenant)) == "queued"
        overflow = _request(env, tenant)
        assert fair.offer(overflow) == "degraded"
        assert overflow.overflow_degraded
        assert fair.pending() == STANDARD.queue_cap + 1
        assert metrics.degraded_by_class["standard"] == 1

    def test_soft_cap_keeps_queueing(self):
        env = Environment()
        tenant = _tenant("premium-0", PREMIUM, 0)
        fair = FairShareAdmission([tenant], quantum=1.0,
                                  starvation_seconds=100.0,
                                  metrics=MetricsCollector())
        for _ in range(PREMIUM.queue_cap + 3):
            assert fair.offer(_request(env, tenant)) == "queued"
        assert fair.pending() == PREMIUM.queue_cap + 3


# -- integration: the service loop ------------------------------------


class TestServiceRuns:
    def test_every_arrival_is_accounted_for(self, ssb_db):
        result = serve(ssb_db, small_service())
        assert result.arrivals > 0
        assert result.conserved()
        assert result.identical
        assert result.metrics.slo_ledger()  # populated for service runs

    def test_no_tenant_starves_under_overload(self, ssb_db):
        service = small_service(rate=2000.0, duration_seconds=0.5,
                                tenants_per_class=2, max_inflight=2)
        result = serve(ssb_db, service)
        completed = {
            tenant: row.get("completed", 0.0)
            for tenant, row in result.tenant_ledger.items()
        }
        assert len(completed) == 6
        assert all(count >= 1 for count in completed.values()), completed
        assert result.conserved()

    def test_epoch_pinned_identity_under_concurrent_appends(self, ssb_db):
        service = small_service(duration_seconds=2.0, rate=100.0,
                                mutation_interval_seconds=0.5,
                                append_fraction=0.10)
        result = serve(ssb_db, service)
        assert result.epochs >= 2
        assert result.identical, result.divergences
        assert result.conserved()
        # drained superseded snapshots retired through the registry
        assert result.metrics.snapshots_retired >= 1

    def test_hedging_never_double_counts_a_shed_query(self, ssb_db):
        # overload + hedging + deadlines: the conservation law is the
        # double-count detector — a query that was shed must not also
        # complete via a hedge twin, nor be cancelled twice
        service = small_service(rate=3000.0, duration_seconds=0.5,
                                max_inflight=2, hedge_factor=2.0,
                                deadline_seconds=0.005)
        result = serve(ssb_db, service)
        assert result.shed > 0
        assert result.cancelled >= 0
        assert result.conserved(), (
            result.arrivals, result.completed, result.shed,
            result.cancelled)
        assert result.identical

    def test_sheds_fall_on_best_effort_before_premium(self, ssb_db):
        service = small_service(rate=3000.0, duration_seconds=0.5,
                                max_inflight=2)
        result = serve(ssb_db, service)
        ledger = result.ledger
        assert ledger["best_effort"]["shed"] > 0
        assert ledger["premium"]["shed"] == 0

    def test_composes_with_fault_storm_and_breakers(self, ssb_db):
        service = small_service(duration_seconds=1.0, rate=300.0,
                                mutation_interval_seconds=0.4,
                                deadline_seconds=0.05,
                                latency_target_seconds=0.02)
        result = serve(
            ssb_db, service,
            faults="pcie=0.05,heap=0.05,kernel=0.05,"
                   "breaker_threshold=3,seed=13",
        )
        assert result.faults_injected > 0
        assert result.identical, result.divergences[:3]
        assert result.conserved()
        # chaos blame lands on tenants
        assert result.tenant_faults
        assert any(row.get("aborts", 0) > 0
                   for row in result.tenant_faults.values())
        # the fault summary carries the per-tenant attribution keys
        summary = result.metrics.fault_summary()
        assert any(key.startswith("fault_aborts_") for key in summary)

    def test_trace_arrivals_replay(self, ssb_db):
        times = tuple(i * 0.01 for i in range(20))
        service = small_service(arrivals="trace", trace_times=times,
                                duration_seconds=0.5)
        result = serve(ssb_db, service)
        assert result.arrivals == len(times)
        assert result.conserved()

    def test_deadlines_cancel_and_count(self, ssb_db):
        service = small_service(rate=2000.0, duration_seconds=0.4,
                                max_inflight=1,
                                deadline_seconds=0.002)
        result = serve(ssb_db, service)
        assert result.cancelled > 0
        assert result.conserved()
        ledger = result.ledger
        total_cancelled = sum(row["cancelled"] for row in ledger.values())
        assert total_cancelled == result.cancelled

    def test_wait_and_service_split_in_ledger(self, ssb_db):
        service = small_service(rate=2000.0, duration_seconds=0.4,
                                max_inflight=1,
                                latency_target_seconds=0.01)
        result = serve(ssb_db, service)
        busy = [row for row in result.ledger.values()
                if row["completed"] > 0]
        assert busy
        # under a 1-slot gate queue time dominates: wait is visible
        assert any(row["mean_wait"] > 0 for row in busy)
        assert all(row["mean_service"] > 0 for row in busy)

    def test_per_class_deadline_safety_reaches_queries(self, ssb_db):
        # the knob itself is exercised end-to-end by the split tests;
        # here: per-class values land on the query contexts
        tenants = build_tenants(small_service())
        by_class = {t.slo.name: t.slo.deadline_safety for t in tenants}
        assert by_class["premium"] == 3.0
        assert by_class["best_effort"] == 1.0

    @pytest.mark.skipif(
        not (shm.available()
             and "fork" in multiprocessing.get_all_start_methods()),
        reason="needs fork and shared memory",
    )
    def test_pool_chaos_sidecar_composition(self, ssb_db):
        service = small_service(duration_seconds=1.0, rate=100.0,
                                mutation_interval_seconds=0.5,
                                pool_chaos=True, pool_jobs=2)
        result = serve(
            ssb_db, service,
            faults="crash=0.2,hang=0.1,kernel=0.02,seed=3",
        )
        assert result.epochs >= 1
        assert result.identical, result.divergences[:3]
        assert result.conserved()
        assert not shm.leaked_segments()


class TestZeroOverhead:
    def test_batch_path_untouched_by_service_mode(self, ssb_db):
        # importing and running service mode must not perturb a plain
        # batch run: same simulated makespan with and without a prior
        # service run in the process
        from repro.harness.runner import run_workload
        from repro.workloads import ssb as ssb_mod

        queries = ssb_mod.workload(ssb_db, FAST_QUERIES)
        before = run_workload(ssb_db, queries, "critical_path")
        serve(ssb_db, small_service(duration_seconds=0.3, rate=50.0))
        after = run_workload(ssb_db, queries, "critical_path")
        assert after.seconds == before.seconds
