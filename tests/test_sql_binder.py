"""Unit tests for the binder (name resolution, QuerySpec construction)."""

import pytest

from repro.engine.expressions import And, Between, ColumnRef, Comparison
from repro.sql import bind
from repro.sql.binder import BindError


def test_unqualified_resolution(toy_db):
    spec = bind("select amount from sales", toy_db)
    assert spec.select_items[0][1] == ColumnRef("sales", "amount")


def test_qualified_resolution(toy_db):
    spec = bind("select sales.amount from sales", toy_db)
    assert spec.select_items[0][1] == ColumnRef("sales", "amount")


def test_unknown_table_rejected(toy_db):
    with pytest.raises(BindError):
        bind("select a from nonexistent", toy_db)


def test_unknown_column_rejected(toy_db):
    with pytest.raises(BindError):
        bind("select bogus from sales", toy_db)


def test_table_not_in_from_rejected(toy_db):
    with pytest.raises(BindError):
        bind("select store.region from sales", toy_db)


def test_join_edge_extraction(toy_db):
    spec = bind(
        "select amount from sales, store where skey = id and amount < 10",
        toy_db,
    )
    assert spec.join_edges == [
        (ColumnRef("sales", "skey"), ColumnRef("store", "id"))
    ]
    assert set(spec.filters) == {"sales"}


def test_filters_grouped_per_table(toy_db):
    spec = bind(
        "select amount from sales, store "
        "where skey = id and amount < 10 and price > 2 and size < 100",
        toy_db,
    )
    sales_filter = spec.filters["sales"]
    assert isinstance(sales_filter, And)
    assert len(sales_filter.children) == 2
    assert isinstance(spec.filters["store"], Comparison)


def test_multi_table_non_join_predicate_rejected(toy_db):
    with pytest.raises(BindError):
        bind(
            "select amount from sales, store where skey = id and amount < size",
            toy_db,
        )


def test_or_across_tables_rejected(toy_db):
    with pytest.raises(BindError):
        bind(
            "select amount from sales, store "
            "where skey = id and (amount < 5 or size > 3)",
            toy_db,
        )


def test_star_expansion(toy_db):
    spec = bind("select * from sales", toy_db)
    assert [alias for alias, _ in spec.select_items] == [
        "skey", "amount", "price",
    ]


def test_aggregate_aliases(toy_db):
    spec = bind("select sum(amount), count(*) as n from sales", toy_db)
    assert spec.aggregates[0].alias == "sum_1"
    assert spec.aggregates[1].alias == "n"
    assert spec.is_aggregation


def test_group_by_resolution(toy_db):
    spec = bind(
        "select region, sum(amount) as s from sales, store "
        "where skey = id group by region",
        toy_db,
    )
    assert spec.group_by == [ColumnRef("store", "region")]


def test_non_grouped_output_rejected(toy_db):
    with pytest.raises(BindError):
        bind(
            "select price, sum(amount) as s from sales, store "
            "where skey = id group by region",
            toy_db,
        )


def test_order_by_must_reference_output(toy_db):
    with pytest.raises(BindError):
        bind("select amount from sales order by price", toy_db)


def test_order_by_aggregate_alias(toy_db):
    spec = bind(
        "select region, sum(amount) as s from sales, store "
        "where skey = id group by region order by s desc",
        toy_db,
    )
    assert spec.order_by == [("s", False)]


def test_between_bound(toy_db):
    spec = bind("select amount from sales where amount between 2 and 7", toy_db)
    assert isinstance(spec.filters["sales"], Between)


def test_required_columns(toy_db):
    spec = bind(
        "select region, sum(amount * price) as s from sales, store "
        "where skey = id and size < 50 group by region",
        toy_db,
    )
    assert spec.required_columns() == {
        "sales.skey", "sales.amount", "sales.price",
        "store.id", "store.size", "store.region",
    }


def test_limit_propagates(toy_db):
    spec = bind("select amount from sales limit 3", toy_db)
    assert spec.limit == 3


def test_ambiguous_column_rejected():
    import numpy as np

    from repro.storage import ColumnType, Database

    db = Database()
    for name in ("a", "b"):
        table = db.create_table(name)
        table.add_column("x", ColumnType.INT32, np.arange(3, dtype=np.int32))
    with pytest.raises(BindError):
        bind("select x from a, b", db)
