"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, stdin=None, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, input=stdin, timeout=timeout,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Logical plan" in result.stdout
    assert "data_driven_chopping" in result.stdout


def test_adhoc_cache_thrashing():
    result = run_example("adhoc_cache_thrashing.py")
    assert result.returncode == 0, result.stderr
    assert "operator-driven" in result.stdout
    assert "Working set" in result.stdout


def test_multi_user_dashboard():
    result = run_example("multi_user_dashboard.py")
    assert result.returncode == 0, result.stderr
    assert "Wasted time" in result.stdout


def test_multi_gpu_scaleup():
    result = run_example("multi_gpu_scaleup.py")
    assert result.returncode == 0, result.stderr
    assert "data_driven_chopping" in result.stdout


def test_compression_breakdown():
    result = run_example("compression_breakdown.py")
    assert result.returncode == 0, result.stderr
    assert "compressed" in result.stdout


def test_chaos_demo():
    result = run_example("chaos_demo.py")
    assert result.returncode == 0, result.stderr
    assert "injected co-processor faults" in result.stdout
    assert "breaker" in result.stdout
    # every rate's result table matched the fault-free run
    assert "NO" not in result.stdout


def test_reproduce_paper_selected_figure():
    result = run_example("reproduce_paper.py", "--fast", "fig16")
    assert result.returncode == 0, result.stderr
    assert "Figure 16" in result.stdout
    assert "All done" in result.stdout


def test_reproduce_paper_rejects_unknown_figure():
    result = run_example("reproduce_paper.py", "fig99")
    assert result.returncode == 1
    assert "unknown figure" in result.stdout


def test_sql_shell_scripted_session():
    session = "\n".join([
        "\\tables",
        "select d_year, sum(lo_revenue) as r from lineorder, date "
        "where lo_orderdate = d_datekey group by d_year order by d_year",
        "\\strategy cpu_only",
        "select count(*) as n from supplier",
        "\\quit",
    ]) + "\n"
    result = run_example("sql_shell.py", stdin=session)
    assert result.returncode == 0, result.stderr
    assert "lineorder" in result.stdout
    assert "d_year" in result.stdout
    assert "strategy = cpu_only" in result.stdout


def test_sql_shell_reports_errors_gracefully():
    session = "select nope from nowhere\n\\quit\n"
    result = run_example("sql_shell.py", stdin=session)
    assert result.returncode == 0
    assert "error:" in result.stdout
