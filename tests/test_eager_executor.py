"""Unit tests for the eager executor (compile-time and run-time
placement without a worker pool) and plan explain output."""

import pytest

from tests.conftest import make_context
from repro.core.placement import CpuOnly, GpuPreferred, RuntimeHype
from repro.engine import Planner
from repro.engine.execution import execute_functional, run_plan_eager
from repro.hardware import SystemConfig
from repro.hardware.calibration import MIB
from repro.sql import bind


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region order by s desc"
)


def make_plan(db, sql=JOIN_SQL):
    return Planner(db).plan(bind(sql, db, name="q"))


def run(env, ctx, plan, strategy):
    strategy.prepare_plan(ctx, plan)
    process = run_plan_eager(ctx, plan, strategy)
    env.run()
    return process.value


def test_eager_cpu_only_results(toy_db):
    env, hw, ctx = make_context(toy_db)
    expected = execute_functional(make_plan(toy_db), toy_db)
    result = run(env, ctx, make_plan(toy_db), CpuOnly())
    assert result.payload.row_tuples() == expected.payload.row_tuples()
    assert result.location == "cpu"


def test_eager_gpu_result_returned_to_host(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    result = run(env, ctx, make_plan(toy_db), GpuPreferred())
    # the root result always ends on the host, device memory released
    assert result.location == "cpu"
    assert hw.gpu_heap.used == 0


def test_eager_children_run_in_parallel(toy_db):
    """Inter-operator parallelism: both scans overlap in time."""
    env, hw, ctx = make_context(toy_db)
    plan = make_plan(toy_db)
    run(env, ctx, plan, CpuOnly())
    makespan_parallel = env.now

    # serial lower bound: sum of all operator times exceeds the
    # makespan only if something overlapped; with fair sharing the
    # total CPU busy time equals the sum of execution times
    busy = hw.metrics.busy_seconds["cpu"]
    assert makespan_parallel <= busy + 1e-9 or busy == pytest.approx(
        makespan_parallel
    )


def test_eager_runtime_strategy_decides_per_operator(toy_db):
    env, hw, ctx = make_context(toy_db)
    for column in toy_db.columns():
        hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
    plan = make_plan(toy_db)
    result = run(env, ctx, plan, RuntimeHype())
    # run-time strategies leave compile-time placement untouched
    assert all(op.placement is None for op in plan.operators)
    assert result.location == "cpu"
    assert hw.metrics.operators_per_processor["gpu"] > 0


def test_eager_load_tracking_settles_to_zero(toy_db):
    env, hw, ctx = make_context(toy_db)
    run(env, ctx, make_plan(toy_db), RuntimeHype())
    assert ctx.load.estimated_completion("cpu") == pytest.approx(0.0)
    assert ctx.load.estimated_completion("gpu") == pytest.approx(0.0)


def test_eager_gpu_preferred_on_starved_device_falls_back(toy_db):
    config = SystemConfig(gpu_memory_bytes=4 * MIB, gpu_cache_bytes=2 * MIB)
    env, hw, ctx = make_context(toy_db, config)
    expected = execute_functional(make_plan(toy_db), toy_db)
    result = run(env, ctx, make_plan(toy_db), GpuPreferred())
    assert result.payload.row_tuples() == expected.payload.row_tuples()
    assert hw.metrics.aborts > 0
    assert hw.gpu_heap.used == 0


def test_explain_shows_kinds_and_placements(toy_db):
    plan = make_plan(toy_db)
    text = plan.explain()
    assert "[sort on ?]" in text
    assert "Join" in text
    plan.assign_all("cpu")
    text = plan.explain()
    assert "on cpu" in text
    execute_functional(plan, toy_db)
    text = plan.explain()
    assert "rows=" in text and "nominal=" in text
