"""The declarative cell grid runner (repro.harness.parallel)."""

import pytest

from repro.harness.parallel import (
    Cell,
    CellOutcome,
    clear_workload_cache,
    execute_cell,
    resolve_jobs,
    run_cells,
    set_default_jobs,
)

#: Cheap but non-trivial cells: tiny scale factor, one query each.
SMOKE_CELLS = [
    Cell(workload="ssb", scale_factor=1.0, strategy="cpu_only",
         repetitions=1, query_names=("Q1.1",)),
    Cell(workload="ssb", scale_factor=1.0, strategy="gpu_only",
         repetitions=1, query_names=("Q1.1",)),
    Cell(workload="ssb", scale_factor=1.0, strategy="data_driven_chopping",
         repetitions=1, query_names=("Q2.1",)),
    Cell(workload="ssb", scale_factor=1.0, measure="footprint"),
]


class TestResolveJobs:
    def teardown_method(self):
        set_default_jobs(None)

    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(4)
        assert resolve_jobs(2) == 2

    def test_set_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(4)
        assert resolve_jobs() == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestCellValidation:
    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            Cell(workload="nope")

    def test_unknown_measure(self):
        with pytest.raises(ValueError):
            Cell(measure="wall")

    def test_cells_are_hashable_specs(self):
        assert Cell(workload="ssb") == Cell(workload="ssb")
        assert len({Cell(workload="ssb"), Cell(workload="ssb")}) == 1


class TestExecuteCell:
    def test_footprint_cell_skips_execution(self):
        outcome = execute_cell(Cell(workload="ssb", scale_factor=1.0,
                                    measure="footprint"))
        assert outcome.footprint_bytes > 0
        assert outcome.seconds == 0.0
        assert outcome.latencies == {}

    def test_run_cell_produces_measurements(self):
        outcome = execute_cell(SMOKE_CELLS[0])
        assert outcome.seconds > 0
        assert outcome.mean_latency("Q1.1") > 0
        assert outcome.mean_latency("no_such_query") == 0.0
        assert set(outcome.phase_seconds) >= {"numpy", "plan", "des"}


class TestRunCells:
    def test_outcomes_in_cell_order(self):
        outcomes = run_cells(SMOKE_CELLS, jobs=1)
        assert len(outcomes) == len(SMOKE_CELLS)
        assert all(isinstance(o, CellOutcome) for o in outcomes)
        # the footprint cell is last, exactly where its spec sits
        assert outcomes[-1].seconds == 0.0
        assert outcomes[-1].footprint_bytes > 0

    def test_parallel_equals_sequential(self):
        import dataclasses

        def simulated(outcome):
            # phase_seconds is *wall-clock* and legitimately varies
            # between runs; every simulated measurement must not.
            return dataclasses.replace(outcome, phase_seconds={})

        sequential = [simulated(o) for o in run_cells(SMOKE_CELLS, jobs=1)]
        parallel = [simulated(o) for o in run_cells(SMOKE_CELLS, jobs=2)]
        assert parallel == sequential

    def test_empty_grid(self):
        assert run_cells([], jobs=4) == []


def test_driver_tables_identical_across_worker_counts(monkeypatch):
    """A figure driver's printed table must not depend on --jobs."""
    monkeypatch.setenv("REPRO_FAST", "1")
    from repro.harness import experiments as E

    sequential = E.figure24(repetitions=1)
    parallel = E.figure24(repetitions=1, jobs=2)
    assert parallel.format_table() == sequential.format_table()


def test_clear_workload_cache_is_idempotent():
    clear_workload_cache()
    clear_workload_cache()
