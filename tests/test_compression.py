"""Unit and property tests for the column compression codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Column, ColumnType
from repro.storage.compression import (
    BitPackCodec,
    DeltaBitPackCodec,
    RunLengthCodec,
    choose_codec,
    codec_by_name,
    compress_column,
    compress_database,
    compression_summary,
)


CODECS = (RunLengthCodec(), BitPackCodec(), DeltaBitPackCodec())


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_round_trip_simple(codec):
    values = np.array([5, 5, 5, 9, 9, 1, 1, 1, 1], dtype=np.int32)
    payload = codec.encode(values)
    decoded = codec.decode(payload, np.int32, len(values))
    assert np.array_equal(decoded, values)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_round_trip_empty(codec):
    values = np.empty(0, dtype=np.int32)
    payload = codec.encode(values)
    decoded = codec.decode(payload, np.int32, 0)
    assert len(decoded) == 0


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@given(data=st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_round_trip_property(codec, data):
    values = np.array(data, dtype=np.int32)
    payload = codec.encode(values)
    decoded = codec.decode(payload, np.int32, len(values))
    assert np.array_equal(decoded, values)


def test_rle_wins_on_constant_column():
    values = np.full(10_000, 7, dtype=np.int32)
    compression = choose_codec(values)
    assert compression.codec == "rle"
    assert compression.ratio < 0.01


def test_bitpack_wins_on_small_domain():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 11, 10_000).astype(np.int32)  # discounts 0-10
    assert BitPackCodec().ratio(values) < 0.15
    compression = choose_codec(values)
    assert compression.ratio < 0.2


def test_delta_wins_on_sorted_keys():
    values = np.arange(1, 10_001, dtype=np.int32)  # order keys
    delta = DeltaBitPackCodec().ratio(values)
    bitpack = BitPackCodec().ratio(values)
    assert delta < bitpack


def test_random_wide_data_does_not_compress():
    rng = np.random.default_rng(1)
    values = rng.integers(-2**30, 2**30, 5000).astype(np.int32)
    compression = choose_codec(values)
    assert compression.ratio > 0.9


def test_ratio_never_exceeds_one():
    rng = np.random.default_rng(2)
    values = rng.integers(-2**30, 2**30, 100).astype(np.int32)
    for codec in CODECS:
        assert codec.ratio(values) <= 1.0


def test_codec_by_name():
    assert codec_by_name("rle").name == "rle"
    with pytest.raises(KeyError):
        codec_by_name("zstd")


def test_compress_column_shrinks_nominal_bytes():
    values = np.full(1000, 3, dtype=np.int32)
    column = Column("t", "c", ColumnType.INT32, values, nominal_rows=10**6)
    raw = column.nominal_bytes
    compression = compress_column(column)
    assert compression.codec == "rle"
    assert column.nominal_bytes < raw / 10
    assert column.nominal_bytes == int(raw * compression.ratio)


def test_compress_database_and_summary(ssb_db):
    import copy

    db = copy.deepcopy(ssb_db)
    before = db.nominal_bytes
    report = compress_database(db)
    after = db.nominal_bytes
    assert after < before  # SSB has many narrow columns
    assert set(report) == {c.key for c in db.columns()}
    text = compression_summary(report)
    assert "lineorder.lo_discount" in text
    # discounts (0-10) bit-pack well
    assert report["lineorder.lo_discount"].ratio < 0.2


def test_compression_preserves_query_results(ssb_db):
    """Compression changes sizing only — never results."""
    import copy

    from repro.engine.execution import execute_functional
    from repro.workloads import ssb

    db = copy.deepcopy(ssb_db)
    queries = ssb.workload(db, ["Q1.1", "Q2.1"])
    expected = {
        q.name: execute_functional(q.template_plan(), db).payload.row_tuples()
        for q in queries
    }
    compress_database(db)
    fresh = ssb.workload(db, ["Q1.1", "Q2.1"])
    for query in fresh:
        result = execute_functional(query.template_plan(), db)
        assert result.payload.row_tuples() == expected[query.name]


def test_compression_shifts_the_thrashing_point(ssb_db):
    """Sec. 6.3: compression shifts the breakdown to larger working
    sets but does not remove the effect."""
    import copy

    from repro.harness.runner import workload_footprint_bytes
    from repro.workloads import micro

    db = copy.deepcopy(ssb_db)
    queries = micro.serial_selection_workload(db)
    before = workload_footprint_bytes(queries, db)
    compress_database(db)
    after = workload_footprint_bytes(
        micro.serial_selection_workload(db), db
    )
    assert after < before * 0.6  # narrow fact columns pack well
    assert after > 0  # the working set does not vanish
