"""Table epochs: append snapshots, pinning, and cache retirement."""

import numpy as np
import pytest

from repro.engine import execute_reference
from repro.storage import Database, EpochStore
from repro.workloads import ssb


Q11 = (
    "select sum(lo_extendedprice * lo_discount) as revenue "
    "from lineorder, date where lo_orderdate = d_datekey "
    "and d_year = 1993 and lo_discount between 1 and 3 "
    "and lo_quantity < 25"
)


class TestAdvance:
    def test_append_grows_fact_table(self, ssb_db):
        store = EpochStore(ssb_db)
        base_rows = ssb_db.table("lineorder").actual_rows
        snapshot = store.advance(0.05)
        grown = snapshot.table("lineorder")
        batch = max(1, int(base_rows * 0.05))
        assert grown.actual_rows == base_rows + batch
        assert store.appended_rows["lineorder"] == batch
        # the base database itself is untouched
        assert ssb_db.table("lineorder").actual_rows == base_rows

    def test_untouched_tables_shared_by_identity(self, ssb_db):
        store = EpochStore(ssb_db)
        snapshot = store.advance(0.05)
        assert snapshot.table("date") is ssb_db.table("date")
        assert snapshot.table("lineorder") is not ssb_db.table("lineorder")

    def test_nominal_rows_scale_with_append(self, ssb_db):
        store = EpochStore(ssb_db)
        fact = ssb_db.table("lineorder")
        snapshot = store.advance(0.10)
        grown = snapshot.table("lineorder")
        scale = grown.actual_rows / fact.actual_rows
        assert grown.nominal_rows == int(round(fact.nominal_rows * scale))
        for column in grown.columns:
            base_col = fact.column(column.name)
            assert column.nominal_rows > base_col.nominal_rows

    def test_appended_columns_share_dictionary(self, ssb_db):
        store = EpochStore(ssb_db)
        snapshot = store.advance(0.05)
        for column in snapshot.table("lineorder").columns:
            base_col = ssb_db.table("lineorder").column(column.name)
            if base_col.dictionary is not None:
                assert column.dictionary is base_col.dictionary

    def test_batch_is_prefix_of_existing_rows(self, ssb_db):
        store = EpochStore(ssb_db)
        snapshot = store.advance(0.05)
        base_col = ssb_db.table("lineorder").column("lo_quantity")
        grown_col = snapshot.table("lineorder").column("lo_quantity")
        n = base_col.actual_rows
        batch = grown_col.actual_rows - n
        assert np.array_equal(grown_col.values[:n], base_col.values)
        assert np.array_equal(grown_col.values[n:],
                              base_col.values[:batch])

    def test_explicit_target_tables(self, ssb_db):
        store = EpochStore(ssb_db)
        snapshot = store.advance(0.05, tables=["date"])
        assert snapshot.table("date") is not ssb_db.table("date")
        assert snapshot.table("lineorder") is ssb_db.table("lineorder")

    def test_unknown_table_raises(self, ssb_db):
        store = EpochStore(ssb_db)
        with pytest.raises(KeyError):
            store.advance(0.05, tables=["nope"])

    def test_bad_fraction_raises(self, ssb_db):
        store = EpochStore(ssb_db)
        for fraction in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                store.advance(fraction)


class TestReferenceOverEpochs:
    def test_reference_results_differ_and_are_deterministic(self):
        database = ssb.generate(scale_factor=0.01, data_scale=0.01,
                                seed=99)
        store = EpochStore(database)
        query = ssb.workload(database, ["Q1.1"])[0]
        base_rows = execute_reference(query.spec, database)
        snapshot = store.advance(0.20)
        fresh = ssb.workload(snapshot, ["Q1.1"])[0]
        new_rows = execute_reference(fresh.spec, snapshot)
        again = execute_reference(fresh.spec, snapshot)
        assert new_rows == again
        # a 20% append of rows matching a non-empty aggregate moves it
        assert new_rows != base_rows
        # and the base epoch still answers exactly as before
        assert execute_reference(query.spec, database) == base_rows


class TestPinning:
    def test_pin_unpin_and_retire(self, ssb_db):
        store = EpochStore(ssb_db)
        epoch = store.pin()
        assert epoch == 0
        store.advance(0.05)
        # epoch 0 is superseded but pinned: nothing retires
        assert store.retire() == 0
        assert store.live_epochs() == [0, 1]
        assert store.unpin(0) == 1
        assert store.live_epochs() == [1]

    def test_head_never_retires(self, ssb_db):
        store = EpochStore(ssb_db)
        store.advance(0.05)
        store.advance(0.05)
        assert store.retire() == 2 - 0  # epochs 0 and 1, both unpinned
        assert store.live_epochs() == [2]
        assert store.retire() == 0

    def test_unpin_without_pin_raises(self, ssb_db):
        store = EpochStore(ssb_db)
        with pytest.raises(ValueError):
            store.unpin(0)

    def test_pin_unknown_epoch_raises(self, ssb_db):
        store = EpochStore(ssb_db)
        with pytest.raises(KeyError):
            store.pin(7)

    def test_multiple_pins_block_retirement(self, ssb_db):
        store = EpochStore(ssb_db)
        store.pin(0)
        store.pin(0)
        store.advance(0.05)
        assert store.unpin(0) == 0
        assert store.unpin(0) == 1
