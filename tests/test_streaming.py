"""Tests for the streaming-transfer execution mode (Sec. 5.5)."""

import dataclasses

import pytest

from tests.conftest import make_context
from repro.engine.execution import execute_operator
from repro.engine.expressions import ColumnRef, Comparison, Literal
from repro.engine.operators import ScanSelect
from repro.hardware import SystemConfig
from repro.hardware.calibration import GIB, MIB
from repro.harness import run_workload
from repro.workloads import sql_workload


AMOUNT = ColumnRef("sales", "amount")


def cold_config(streaming, **kwargs):
    defaults = dict(gpu_memory_bytes=1 * GIB, gpu_cache_bytes=0,
                    streaming_transfers=streaming)
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def run_scan(toy_db, streaming):
    env, hw, ctx = make_context(toy_db, cold_config(streaming))
    op = ScanSelect("sales", Comparison("<", AMOUNT, Literal(30)))
    proc = env.process(execute_operator(ctx, op, [], "gpu"))
    env.run()
    proc.value.release_device_memory()
    return env.now, hw


def test_streaming_overlaps_transfer_and_compute(toy_db):
    staged_time, _ = run_scan(toy_db, streaming=False)
    streaming_time, _ = run_scan(toy_db, streaming=True)
    assert streaming_time < staged_time


def test_streaming_never_beats_the_slower_component(toy_db):
    streaming_time, hw = run_scan(toy_db, streaming=True)
    column = toy_db.column("sales.amount")
    transfer = hw.bus.transfer_time(column.nominal_bytes)
    compute = hw.profile.compute_seconds(
        "selection", hw.gpu.kind, column.nominal_bytes
    )
    assert streaming_time >= max(transfer, compute) - 1e-9


def test_streaming_charges_the_same_bus_volume(toy_db):
    _, hw_staged = run_scan(toy_db, streaming=False)
    _, hw_streaming = run_scan(toy_db, streaming=True)
    assert (hw_streaming.metrics.cpu_to_gpu_bytes
            == hw_staged.metrics.cpu_to_gpu_bytes)


def test_streaming_results_identical(toy_db):
    queries = sql_workload(toy_db, {
        "q": "select region, sum(amount) as s from sales, store "
             "where skey = id group by region"
    })
    rows = {}
    for streaming in (False, True):
        config = dataclasses.replace(
            SystemConfig(), streaming_transfers=streaming
        )
        run = run_workload(toy_db, queries, "gpu_only", config=config,
                           warm_cache=False, collect_results=True)
        rows[streaming] = run.results["q"].row_tuples()
    assert rows[False] == rows[True]


def test_streaming_workload_not_slower(toy_db):
    queries = sql_workload(toy_db, {
        "q": "select sum(amount) as s from sales where price < 30"
    })
    times = {}
    for streaming in (False, True):
        config = cold_config(streaming, gpu_memory_bytes=2 * GIB)
        run = run_workload(toy_db, queries, "gpu_only", config=config,
                           warm_cache=False, repetitions=3)
        times[streaming] = run.seconds
    assert times[True] <= times[False] + 1e-9
