"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SqlSyntaxError, tokenize


def kinds_and_values(sql):
    return [(t.kind, t.value) for t in tokenize(sql)]


def test_basic_select():
    tokens = kinds_and_values("select a from t")
    assert tokens == [
        ("keyword", "select"),
        ("ident", "a"),
        ("keyword", "from"),
        ("ident", "t"),
        ("end", ""),
    ]


def test_keywords_are_case_insensitive():
    tokens = kinds_and_values("SELECT A FROM T WHERE A BETWEEN 1 AND 2")
    assert tokens[0] == ("keyword", "select")
    assert ("keyword", "between") in tokens
    assert ("keyword", "and") in tokens


def test_identifiers_lowercased():
    tokens = kinds_and_values("select Lo_Revenue from LineOrder")
    assert ("ident", "lo_revenue") in tokens
    assert ("ident", "lineorder") in tokens


def test_numbers_int_and_float():
    tokens = kinds_and_values("select 42, 3.14 from t")
    assert ("number", "42") in tokens
    assert ("number", "3.14") in tokens


def test_string_literal():
    tokens = kinds_and_values("select * from t where c = 'MFGR#12'")
    assert ("string", "MFGR#12") in tokens


def test_string_literal_preserves_case():
    tokens = kinds_and_values("select * from t where c = 'Dec1997'")
    assert ("string", "Dec1997") in tokens


def test_unterminated_string_rejected():
    with pytest.raises(SqlSyntaxError):
        tokenize("select 'oops from t")


def test_comparison_symbols():
    tokens = kinds_and_values("a <= b >= c <> d != e < f > g = h")
    symbols = [v for k, v in tokens if k == "symbol"]
    assert symbols == ["<=", ">=", "<>", "<>", "<", ">", "="]


def test_arithmetic_and_punctuation():
    tokens = kinds_and_values("(a + b) * c - d / e, f.g")
    symbols = [v for k, v in tokens if k == "symbol"]
    assert symbols == ["(", "+", ")", "*", "-", "/", ",", "."]


def test_qualified_name_dot():
    tokens = kinds_and_values("lineorder.lo_discount")
    assert tokens == [
        ("ident", "lineorder"),
        ("symbol", "."),
        ("ident", "lo_discount"),
        ("end", ""),
    ]


def test_number_followed_by_dot_ident():
    # "1." followed by non-digit must not swallow the dot.
    tokens = kinds_and_values("select 1 from t where a = 1")
    assert ("number", "1") in tokens


def test_unexpected_character_rejected():
    with pytest.raises(SqlSyntaxError):
        tokenize("select @ from t")


def test_whitespace_and_newlines():
    tokens = kinds_and_values("select\n\t a \n from\tt")
    assert [k for k, _ in tokens] == ["keyword", "ident", "keyword", "ident", "end"]
