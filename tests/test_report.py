"""Tests for the live reproduction report."""

from repro.cli import main
from repro.harness.report import CLAIMS, generate_report


def test_report_all_claims_hold():
    report = generate_report(fast=True)
    assert "NO" not in report
    assert "{} of {} claims hold.".format(len(CLAIMS), len(CLAIMS)) in report


def test_report_contains_every_claim_row():
    report = generate_report(fast=True)
    assert report.count("|") >= (len(CLAIMS) + 2) * 5
    for needle in ("cache thrashing", "heap contention", "Q3.4"):
        assert needle in report


def test_report_cli(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "Reproduction report" in out
    assert "claims hold" in out
