"""Unit tests for the PCIe bus and processor models."""

import pytest

from repro.hardware import PCIeBus, Processor, ProcessorKind
from repro.hardware.calibration import COGADB_PROFILE, OCELOT_PROFILE, GIB
from repro.hardware.system import HardwareSystem, SystemConfig
from repro.metrics import MetricsCollector
from repro.sim import Environment


def test_transfer_time_formula():
    env = Environment()
    bus = PCIeBus(env, bandwidth_bytes_per_second=1000.0, latency_seconds=0.5)
    assert bus.transfer_time(2000) == pytest.approx(0.5 + 2.0)


def test_transfer_advances_clock_and_records_metrics():
    env = Environment()
    metrics = MetricsCollector()
    bus = PCIeBus(env, 1000.0, latency_seconds=0.0, metrics=metrics)

    def proc():
        yield from bus.transfer(500, "h2d")
        yield from bus.transfer(250, "d2h")

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(0.75)
    assert metrics.cpu_to_gpu_bytes == 500
    assert metrics.gpu_to_cpu_bytes == 250
    assert metrics.cpu_to_gpu_seconds == pytest.approx(0.5)
    assert metrics.gpu_to_cpu_seconds == pytest.approx(0.25)


def test_concurrent_transfers_serialize_on_the_bus():
    env = Environment()
    bus = PCIeBus(env, 1000.0)
    ends = []

    def mover(name):
        yield from bus.transfer(1000, "h2d")
        ends.append((name, env.now))

    env.process(mover("a"))
    env.process(mover("b"))
    env.run()
    # Each transfer takes 1s of wire time; the second waits for the first.
    assert ends == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_zero_byte_transfer_is_free():
    env = Environment()
    metrics = MetricsCollector()
    bus = PCIeBus(env, 1000.0, metrics=metrics)

    def proc():
        yield from bus.transfer(0, "h2d")

    env.process(proc())
    env.run()
    assert env.now == 0.0
    assert metrics.cpu_to_gpu_bytes == 0


def test_bad_direction_rejected():
    env = Environment()
    bus = PCIeBus(env, 1000.0)
    with pytest.raises(ValueError):
        list(bus.transfer(10, "sideways"))


def test_processor_executes_and_records():
    env = Environment()
    metrics = MetricsCollector()
    cpu = Processor(env, "cpu", ProcessorKind.CPU, metrics=metrics)

    def proc():
        yield from cpu.execute(2.0)

    env.process(proc())
    env.run()
    assert env.now == 2.0
    assert metrics.operators_per_processor["cpu"] == 1
    assert metrics.busy_seconds["cpu"] == pytest.approx(2.0)


def test_processor_fair_sharing_two_equal_jobs():
    env = Environment()
    gpu = Processor(env, "gpu", ProcessorKind.GPU)
    ends = []

    def op(name):
        yield from gpu.execute(1.0)
        ends.append((name, env.now))

    env.process(op("a"))
    env.process(op("b"))
    env.run()
    # Two concurrent 1s jobs share the device: both finish at 2s.
    assert ends == [("a", pytest.approx(2.0)), ("b", pytest.approx(2.0))]


def test_processor_fair_sharing_staggered_arrivals():
    env = Environment()
    cpu = Processor(env, "cpu", ProcessorKind.CPU)
    ends = {}

    def first():
        yield from cpu.execute(2.0)
        ends["first"] = env.now

    def second():
        yield env.timeout(1.0)
        yield from cpu.execute(2.0)
        ends["second"] = env.now

    env.process(first())
    env.process(second())
    env.run()
    # first runs alone for 1s (1s of work done), then shares: the
    # remaining 1s takes 2s -> finishes at 3s.  second then runs its
    # remaining 1s alone -> finishes at 4s.
    assert ends["first"] == pytest.approx(3.0)
    assert ends["second"] == pytest.approx(4.0)


def test_processor_total_throughput_independent_of_concurrency():
    """A fixed amount of work finishes at the same time regardless of
    how many operators carry it (the paper's 'ideal system')."""
    for n_jobs in (1, 2, 5, 10):
        env = Environment()
        cpu = Processor(env, "cpu", ProcessorKind.CPU)
        for _ in range(n_jobs):
            env.process(cpu.execute(10.0 / n_jobs))
        env.run()
        assert env.now == pytest.approx(10.0)


def test_processor_zero_work_completes_immediately():
    env = Environment()
    cpu = Processor(env, "cpu", ProcessorKind.CPU)
    done = []

    def op():
        yield cpu.submit(0.0)
        done.append(env.now)

    env.process(op())
    env.run()
    assert done == [0.0]
    assert cpu.active_jobs == 0


def test_processor_estimated_drain():
    env = Environment()
    cpu = Processor(env, "cpu", ProcessorKind.CPU)
    cpu.submit(3.0)
    cpu.submit(1.0)
    assert cpu.estimated_drain_seconds() == pytest.approx(4.0)


def test_profile_gpu_faster_than_cpu_when_hot():
    for profile in (COGADB_PROFILE, OCELOT_PROFILE):
        for op_kind in ("selection", "join", "groupby", "sort"):
            assert profile.speedup(op_kind, 256 * 1024 * 1024) > 1.5, (
                profile.name,
                op_kind,
            )


def test_profile_selection_footprint_matches_paper():
    column = 218 * 1024 * 1024
    footprint = COGADB_PROFILE.footprint_bytes("selection", column)
    assert footprint == int(3.25 * column)


def test_cold_transfer_dominates_gpu_selection():
    """Paper Fig. 1: moving the input costs more than the GPU saves."""
    config = SystemConfig()
    column = 240 * 1024 * 1024
    gpu_time = COGADB_PROFILE.compute_seconds("selection", ProcessorKind.GPU, column)
    cpu_time = COGADB_PROFILE.compute_seconds("selection", ProcessorKind.CPU, column)
    transfer = column / config.pcie_bandwidth_bytes_per_second
    assert gpu_time + transfer > cpu_time
    assert gpu_time * 5 < cpu_time


def test_system_config_heap_is_remainder():
    config = SystemConfig(gpu_memory_bytes=4 * GIB, gpu_cache_bytes=1 * GIB)
    assert config.gpu_heap_bytes == 3 * GIB


def test_system_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(gpu_memory_bytes=1 * GIB, gpu_cache_bytes=2 * GIB)


def test_hardware_system_wiring():
    env = Environment()
    system = HardwareSystem(env, SystemConfig(gpu_cache_bytes=GIB))
    assert system.cpu.kind is ProcessorKind.CPU
    assert system.gpu.kind is ProcessorKind.GPU
    assert system.gpu_heap.capacity == system.config.gpu_heap_bytes
    assert system.gpu_cache.capacity == GIB
    assert system.processor("cpu") is system.cpu
    with pytest.raises(KeyError):
        system.processor("tpu")
    # cache clock is wired to the environment
    system.gpu_cache.admit("col", 10)
    assert system.gpu_cache.entry("col").inserted_at == env.now
