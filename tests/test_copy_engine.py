"""Tests for the asynchronous copy engine and its integrations."""

import hashlib

import pytest

from tests.conftest import make_context
from repro.faults import FaultConfig, FaultInjector
from repro.hardware import (
    CopyEngine,
    HardwareSystem,
    PCIeTransferFault,
    SystemConfig,
)
from repro.metrics import MetricsCollector
from repro.sim import Environment
from repro.workloads import ssb


def make_engine(env, metrics=None, chunk_bytes=256, coalescing=True,
                bandwidth=1000.0):
    return CopyEngine(env, bandwidth_bytes_per_second=bandwidth,
                      latency_seconds=0.0, chunk_bytes=chunk_bytes,
                      coalescing=coalescing, metrics=metrics)


def pcie_injector(env, rate=1.0, seed=3):
    return FaultInjector(FaultConfig.parse("pcie={},seed={}".format(
        rate, seed)), clock=lambda: env.now)


# -- channels ---------------------------------------------------------------


def test_opposite_directions_run_full_duplex():
    env = Environment()
    engine = make_engine(env)
    ends = {}

    def mover(direction):
        yield from engine.transfer(1000, direction, device="gpu")
        ends[direction] = env.now

    env.process(mover("h2d"))
    env.process(mover("d2h"))
    env.run()
    # 1000 B at 1000 B/s each: duplex channels finish together at 1s,
    # where the serialized bus would take 2s
    assert ends["h2d"] == pytest.approx(1.0)
    assert ends["d2h"] == pytest.approx(1.0)


def test_same_direction_serializes_and_records_queueing():
    env = Environment()
    metrics = MetricsCollector()
    engine = make_engine(env, metrics)
    ends = []

    def mover():
        yield from engine.transfer(1000, "h2d", device="gpu")
        ends.append(env.now)

    env.process(mover())
    env.process(mover())
    env.run()
    assert ends == [pytest.approx(1.0), pytest.approx(2.0)]
    # wire time and queueing delay are separate books
    assert metrics.cpu_to_gpu_seconds == pytest.approx(2.0)
    assert metrics.transfer_queue_seconds == pytest.approx(1.0)
    assert metrics.h2d_queue_seconds == pytest.approx(1.0)


def test_devices_have_independent_channels():
    env = Environment()
    engine = make_engine(env)
    ends = {}

    def mover(device):
        yield from engine.transfer(1000, "h2d", device=device)
        ends[device] = env.now

    env.process(mover("gpu"))
    env.process(mover("gpu2"))
    env.run()
    assert ends["gpu"] == pytest.approx(1.0)
    assert ends["gpu2"] == pytest.approx(1.0)


def test_transfer_validation():
    env = Environment()
    engine = make_engine(env)
    with pytest.raises(ValueError):
        list(engine.transfer(-1, "h2d"))
    with pytest.raises(ValueError):
        list(engine.transfer(10, "sideways"))

    done = []

    def zero():
        yield from engine.transfer(0, "h2d", device="gpu")
        done.append(env.now)

    env.process(zero())
    env.run()
    assert done == [0.0]


# -- coalescing -------------------------------------------------------------


def test_concurrent_same_key_copies_coalesce():
    env = Environment()
    metrics = MetricsCollector()
    engine = make_engine(env, metrics)
    ends = []

    def mover():
        yield from engine.transfer(1000, "h2d", device="gpu", key="t.c0")
        ends.append(env.now)

    env.process(mover())
    env.process(mover())
    env.run()
    # the second rider attaches to the in-flight copy: both complete
    # with one copy's wire time on the books
    assert ends == [pytest.approx(1.0), pytest.approx(1.0)]
    assert metrics.coalesced_transfers == 1
    assert metrics.coalesced_bytes == 1000
    assert metrics.cpu_to_gpu_seconds == pytest.approx(1.0)
    assert metrics.cpu_to_gpu_bytes == 1000


def test_coalescing_disabled_queues_duplicate_copies():
    env = Environment()
    metrics = MetricsCollector()
    engine = make_engine(env, metrics, coalescing=False)
    ends = []

    def mover():
        yield from engine.transfer(1000, "h2d", device="gpu", key="t.c0")
        ends.append(env.now)

    env.process(mover())
    env.process(mover())
    env.run()
    assert ends == [pytest.approx(1.0), pytest.approx(2.0)]
    assert metrics.coalesced_transfers == 0
    assert metrics.cpu_to_gpu_seconds == pytest.approx(2.0)


def test_coalesced_waiter_observes_the_fault():
    env = Environment()
    engine = make_engine(env)
    engine.injector = pcie_injector(env)
    outcomes = []

    def mover():
        try:
            yield from engine.transfer(1000, "h2d", device="gpu",
                                       key="t.c0")
        except PCIeTransferFault as fault:
            outcomes.append(fault.fault_class)
        else:
            outcomes.append("ok")

    env.process(mover())
    env.process(mover())
    env.run()
    # one physical copy died; both the owner and the attached rider
    # observe the same fault and can retry independently
    assert outcomes == ["pcie", "pcie"]
    assert not engine.in_flight("gpu", "h2d", "t.c0")


# -- chunked faults ---------------------------------------------------------


def test_mid_chunk_fault_burns_partial_wire_time():
    env = Environment()
    metrics = MetricsCollector()
    engine = make_engine(env, metrics, chunk_bytes=256)
    engine.injector = pcie_injector(env)
    failed = []

    def mover():
        try:
            yield from engine.transfer(1024, "h2d", device="gpu")
        except PCIeTransferFault:
            failed.append(env.now)

    env.process(mover())
    env.run()
    assert len(failed) == 1
    burned = failed[0]
    assert 0.0 < burned < engine.transfer_time(1024)
    # the burned bus time stays on the books, and the bytes that
    # landed are whole chunks
    assert metrics.cpu_to_gpu_seconds == pytest.approx(burned)
    assert metrics.cpu_to_gpu_bytes % 256 == 0
    assert metrics.cpu_to_gpu_bytes < 1024


def test_fault_schedule_deterministic_across_runs():
    def one_run():
        env = Environment()
        metrics = MetricsCollector()
        engine = make_engine(env, metrics, chunk_bytes=256)
        engine.injector = pcie_injector(env, rate=0.5, seed=11)
        log = []

        def mover(index):
            try:
                yield from engine.transfer(512 + index, "h2d", device="gpu")
                log.append((index, "ok", env.now))
            except PCIeTransferFault:
                log.append((index, "pcie", env.now))

        for index in range(6):
            env.process(mover(index))
        env.run()
        digest = hashlib.sha256(repr(log).encode()).hexdigest()
        return digest, engine.injector.schedule_digest()

    assert one_run() == one_run()


# -- prefetch pump ----------------------------------------------------------


def test_prefetch_yields_channel_to_demand_at_chunk_boundary():
    env = Environment()
    engine = make_engine(env, chunk_bytes=100)  # 0.1s per chunk
    ends = {}

    def background():
        yield from engine.transfer(1000, "h2d", device="gpu",
                                   prefetch=True)
        ends["prefetch"] = env.now

    def demand():
        yield env.timeout(0.05)  # arrives mid-first-chunk
        yield from engine.transfer(100, "h2d", device="gpu")
        ends["demand"] = env.now

    env.process(background())
    env.process(demand())
    env.run()
    # the demand copy waits out the current chunk (until 0.1), runs for
    # 0.1, and never sits behind the prefetch's remaining 0.9s
    assert ends["demand"] == pytest.approx(0.2)
    # the preempted prefetch resumes afterwards and still completes
    assert ends["prefetch"] == pytest.approx(1.1)


def test_demand_pump_holds_channel_for_whole_copy():
    env = Environment()
    engine = make_engine(env, chunk_bytes=100)
    ends = {}

    def first():
        yield from engine.transfer(1000, "h2d", device="gpu")
        ends["first"] = env.now

    def second():
        yield env.timeout(0.05)
        yield from engine.transfer(100, "h2d", device="gpu")
        ends["second"] = env.now

    env.process(first())
    env.process(second())
    env.run()
    # demand copies are one DMA job: no preemption points
    assert ends["first"] == pytest.approx(1.0)
    assert ends["second"] == pytest.approx(1.1)


# -- system integration -----------------------------------------------------


def test_disabled_config_constructs_no_engine():
    env = Environment()
    hardware = HardwareSystem(env, SystemConfig(), MetricsCollector())
    assert hardware.copy_engine is None
    metrics = hardware.metrics
    assert metrics.coalesced_transfers == 0
    assert metrics.prefetch_transfers == 0
    assert metrics.overlapped_transfer_seconds == 0.0


def test_with_copy_engine_constructs_and_hooks_injector():
    env = Environment()
    config = SystemConfig().with_copy_engine(True, copy_chunk_bytes=1 << 20)
    hardware = HardwareSystem(env, config, MetricsCollector())
    assert hardware.copy_engine is not None
    assert hardware.copy_engine.chunk_bytes == 1 << 20
    injector = pcie_injector(env)
    hardware.install_faults(injector)
    assert hardware.copy_engine.injector is injector


def test_host_transfer_never_faults():
    env = Environment()
    config = SystemConfig().with_copy_engine(True)
    hardware = HardwareSystem(env, config, MetricsCollector())
    hardware.install_faults(pcie_injector(env))
    done = []

    def mover():
        yield from hardware.host_transfer(1 << 20, "d2h", device="gpu")
        done.append(env.now)

    env.process(mover())
    env.run()
    assert len(done) == 1


def _digest(results):
    payload = repr(sorted(
        (name, tuple(table.row_tuples())) for name, table in results.items()
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.fixture(scope="module")
def overlap_db():
    return ssb.generate(scale_factor=0.5, data_scale=0.01, seed=99)


def _run(db, config, **kwargs):
    from repro.harness.runner import run_workload

    return run_workload(db, ssb.workload(db), "runtime", config=config,
                        users=2, warm_cache=False, collect_results=True,
                        **kwargs)


def test_engine_results_identical_to_baseline(overlap_db):
    config = SystemConfig()
    base = _run(overlap_db, config, validate=True)
    eng = _run(overlap_db, config.with_copy_engine(True), validate=True)
    assert _digest(base.results) == _digest(eng.results)
    assert eng.seconds <= base.seconds


def test_engine_knobs_inert_when_disabled(overlap_db):
    plain = _run(overlap_db, SystemConfig())
    knobs = _run(overlap_db, SystemConfig().with_copy_engine(
        False, copy_chunk_bytes=4096, copy_coalescing=False,
        prefetch_depth=0,
    ))
    assert plain.seconds == knobs.seconds
    assert _digest(plain.results) == _digest(knobs.results)
    for run in (plain, knobs):
        metrics = run.metrics
        assert metrics.coalesced_transfers == 0
        assert metrics.prefetch_transfers == 0
        assert metrics.prefetch_hits == 0
        assert metrics.overlapped_transfer_seconds == 0.0


def test_engine_deterministic_under_faults(overlap_db):
    config = SystemConfig().with_copy_engine(True)
    spec = FaultConfig.uniform(0.05, seed=5)
    first = _run(overlap_db, config, faults=spec)
    second = _run(overlap_db, config, faults=spec)
    assert first.fault_digest == second.fault_digest
    assert first.seconds == second.seconds
    assert _digest(first.results) == _digest(second.results)


def test_overlap_counters_populated(overlap_db):
    eng = _run(overlap_db, SystemConfig().with_copy_engine(True))
    metrics = eng.metrics
    assert metrics.transfer_seconds > 0
    assert 0.0 <= metrics.overlap_ratio <= 1.0
    assert metrics.bus_utilization > 0.0
