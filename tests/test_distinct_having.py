"""Tests for SELECT DISTINCT and HAVING support."""

import numpy as np
import pytest

from repro.engine import Planner, execute_reference
from repro.engine.execution import execute_functional
from repro.engine.operators import Distinct, FrameFilter
from repro.sql import bind
from repro.sql.binder import BindError


def run(db, sql, name="q"):
    spec = bind(sql, db, name=name)
    plan = Planner(db).plan(spec)
    result = execute_functional(plan, db)
    return spec, plan, result


class TestDistinct:
    def test_distinct_removes_duplicates(self, toy_db):
        spec, plan, result = run(
            toy_db, "select distinct skey from sales"
        )
        values = result.payload.column("skey")
        assert len(values) == len(set(values.tolist()))
        assert set(values.tolist()) == set(
            toy_db.column("sales.skey").values.tolist()
        )

    def test_distinct_multi_column(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select distinct skey, amount from sales where amount < 10",
        )
        rows = result.payload.row_tuples()
        assert len(rows) == len(set(rows))
        # oracle
        skey = toy_db.column("sales.skey").values
        amount = toy_db.column("sales.amount").values
        expected = {
            (int(k), int(a)) for k, a in zip(skey, amount) if a < 10
        }
        assert set(rows) == expected

    def test_distinct_matches_reference(self, toy_db):
        spec, plan, result = run(
            toy_db, "select distinct price from sales where price < 20"
        )
        engine_rows = sorted(result.payload.row_tuples())
        reference_rows = sorted(execute_reference(spec, toy_db))
        assert engine_rows == reference_rows

    def test_distinct_plan_contains_operator(self, toy_db):
        spec, plan, _ = run(toy_db, "select distinct skey from sales")
        assert any(isinstance(op, Distinct) for op in plan.operators)

    def test_distinct_with_order_by(self, toy_db):
        spec, plan, result = run(
            toy_db, "select distinct skey from sales order by skey desc"
        )
        values = result.payload.column("skey")
        assert np.array_equal(values, np.sort(values)[::-1])

    def test_distinct_on_aggregation_is_noop(self, toy_db):
        spec = bind(
            "select distinct skey, sum(amount) as s from sales "
            "group by skey",
            toy_db,
        )
        assert not spec.distinct  # grouped output is already unique
        plan = Planner(toy_db).plan(spec)
        assert not any(isinstance(op, Distinct) for op in plan.operators)

    def test_distinct_preserves_dictionaries(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select distinct region from sales, store where skey = id",
        )
        decoded = result.payload.decoded("region")
        assert set(decoded) == {"north", "south", "east", "west"}
        assert len(decoded) == 4


class TestHaving:
    def test_having_filters_groups(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select skey, count(*) as n from sales group by skey "
            "having n > 20",
        )
        assert (result.payload.column("n") > 20).all()
        # oracle: the kept groups are exactly those above the threshold
        import collections

        counts = collections.Counter(
            toy_db.column("sales.skey").values.tolist()
        )
        expected = {k for k, v in counts.items() if v > 20}
        assert set(result.payload.column("skey").tolist()) == expected

    def test_having_matches_reference(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select skey, sum(amount) as total from sales group by skey "
            "having total between 800 and 2000",
        )
        engine_rows = sorted(
            tuple(int(v) for v in row)
            for row in result.payload.row_tuples()
        )
        reference_rows = sorted(
            tuple(int(v) for v in row)
            for row in execute_reference(spec, toy_db)
        )
        assert engine_rows == reference_rows

    def test_having_with_arithmetic(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select skey, sum(amount) as s, count(*) as n from sales "
            "group by skey having s - n > 500",
        )
        frame = result.payload
        assert ((frame.column("s") - frame.column("n")) > 500).all()

    def test_having_on_group_column(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select skey, count(*) as n from sales group by skey "
            "having skey < 5",
        )
        assert (result.payload.column("skey") < 5).all()
        assert result.actual_rows == 4

    def test_having_plan_contains_filter(self, toy_db):
        spec, plan, _ = run(
            toy_db,
            "select skey, count(*) as n from sales group by skey "
            "having n > 0",
        )
        assert any(isinstance(op, FrameFilter) for op in plan.operators)

    def test_having_requires_aggregation(self, toy_db):
        with pytest.raises(BindError):
            bind("select amount from sales having amount > 5", toy_db)

    def test_having_unknown_output_rejected(self, toy_db):
        with pytest.raises(BindError):
            bind(
                "select skey, count(*) as n from sales group by skey "
                "having price > 5",
                toy_db,
            )

    def test_having_string_literal_rejected(self, toy_db):
        with pytest.raises(BindError):
            bind(
                "select region, count(*) as n from sales, store "
                "where skey = id group by region having region = 'north'",
                toy_db,
            )

    def test_having_then_order_and_limit(self, toy_db):
        spec, plan, result = run(
            toy_db,
            "select skey, sum(amount) as s from sales group by skey "
            "having s > 100 order by s desc limit 3",
        )
        values = result.payload.column("s")
        assert len(values) == 3
        assert np.array_equal(values, np.sort(values)[::-1])


class TestSimulatedExecution:
    def test_distinct_and_having_under_strategies(self, toy_db):
        from repro.harness import run_workload
        from repro.workloads import sql_workload

        queries = sql_workload(toy_db, {
            "distinct": "select distinct skey from sales where amount < 50",
            "having": (
                "select skey, count(*) as n from sales group by skey "
                "having n > 15"
            ),
        })
        expected = {
            q.name: execute_functional(
                q.template_plan(), toy_db
            ).payload.row_tuples()
            for q in queries
        }
        for strategy in ("cpu_only", "gpu_only", "data_driven_chopping"):
            run_result = run_workload(toy_db, queries, strategy,
                                      collect_results=True)
            for name, rows in expected.items():
                assert run_result.results[name].row_tuples() == rows
