"""Unit tests for the metrics collector and result tables."""

import pytest

from repro.harness.tables import ExperimentResult
from repro.metrics import MetricsCollector


class TestMetricsCollector:
    def test_transfer_recording(self):
        metrics = MetricsCollector()
        metrics.record_transfer("h2d", 1000, 0.5)
        metrics.record_transfer("h2d", 500, 0.25)
        metrics.record_transfer("d2h", 100, 0.05)
        assert metrics.cpu_to_gpu_bytes == 1500
        assert metrics.cpu_to_gpu_seconds == pytest.approx(0.75)
        assert metrics.gpu_to_cpu_bytes == 100
        assert metrics.transfer_seconds == pytest.approx(0.8)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_transfer("upwards", 1, 1.0)

    def test_abort_and_wasted_time(self):
        metrics = MetricsCollector()
        metrics.record_abort(0.5)
        metrics.record_abort(1.5)
        assert metrics.aborts == 2
        assert metrics.wasted_seconds == pytest.approx(2.0)

    def test_cache_hit_rate(self):
        metrics = MetricsCollector()
        assert metrics.cache_hit_rate == 0.0
        metrics.record_cache_hit()
        metrics.record_cache_hit()
        metrics.record_cache_miss()
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)

    def test_operator_accounting(self):
        metrics = MetricsCollector()
        metrics.record_operator("gpu", 0.1)
        metrics.record_operator("gpu", 0.2)
        metrics.record_operator("cpu", 0.5)
        assert metrics.operators_per_processor["gpu"] == 2
        assert metrics.busy_seconds["gpu"] == pytest.approx(0.3)

    def test_query_latency_aggregation(self):
        metrics = MetricsCollector()
        metrics.record_query("Q1", 0, 0.0, 1.0)
        metrics.record_query("Q1", 1, 1.0, 4.0)
        metrics.record_query("Q2", 0, 0.0, 0.5)
        assert metrics.mean_latency("Q1") == pytest.approx(2.0)
        assert metrics.mean_latency() == pytest.approx((1 + 3 + 0.5) / 3)
        assert metrics.latencies_by_query() == {
            "Q1": pytest.approx(2.0),
            "Q2": pytest.approx(0.5),
        }
        assert metrics.mean_latency("missing") == 0.0

    def test_heap_peak(self):
        metrics = MetricsCollector()
        metrics.record_heap_usage(100)
        metrics.record_heap_usage(50)
        metrics.record_heap_usage(300)
        assert metrics.peak_heap_bytes == 300

    def test_summary_keys(self):
        metrics = MetricsCollector()
        metrics.workload_seconds = 2.0
        summary = metrics.summary()
        for key in ("workload_seconds", "cpu_to_gpu_seconds", "aborts",
                    "wasted_seconds", "cache_hit_rate", "peak_heap_gib"):
            assert key in summary


class TestExperimentResult:
    def sample(self):
        result = ExperimentResult("demo", notes="a note")
        result.add(strategy="a", x=1, y=0.5)
        result.add(strategy="a", x=2, y=0.25)
        result.add(strategy="b", x=1, y=1.0)
        return result

    def test_columns_ordered_by_first_appearance(self):
        result = self.sample()
        assert result.columns() == ["strategy", "x", "y"]

    def test_series_grouping(self):
        series = self.sample().series("x", "y", "strategy")
        assert series["a"] == [(1, 0.5), (2, 0.25)]
        assert series["b"] == [(1, 1.0)]

    def test_format_table_contains_everything(self):
        text = self.sample().format_table()
        assert "demo" in text
        assert "a note" in text
        assert "strategy" in text
        assert "0.2500" in text

    def test_column_values(self):
        assert self.sample().column_values("x") == [1, 2, 1]

    def test_ragged_rows_render(self):
        result = ExperimentResult("ragged")
        result.add(a=1)
        result.add(b=2)
        text = result.format_table()
        assert "a" in text and "b" in text


class TestLatencyPercentiles:
    def collector_with_latencies(self, values, name="Q"):
        metrics = MetricsCollector()
        for i, latency in enumerate(values):
            metrics.record_query(name, 0, float(i), float(i) + latency)
        return metrics

    def test_percentiles_nearest_rank(self):
        metrics = self.collector_with_latencies(
            [float(v) for v in range(1, 101)]
        )
        assert metrics.latency_percentile(0.50) == pytest.approx(51.0)
        assert metrics.latency_percentile(0.95) == pytest.approx(96.0)
        assert metrics.latency_percentile(0.99) == pytest.approx(100.0)
        assert metrics.latency_percentile(0.0) == pytest.approx(1.0)
        assert metrics.latency_percentile(1.0) == pytest.approx(100.0)

    def test_percentile_is_an_observed_value(self):
        metrics = self.collector_with_latencies([0.5, 3.0, 9.0])
        for fraction in (0.1, 0.5, 0.9):
            assert metrics.latency_percentile(fraction) in (0.5, 3.0, 9.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            MetricsCollector().latency_percentile(1.5)

    def test_empty_collector(self):
        assert MetricsCollector().latency_percentile(0.5) == 0.0

    def test_tail_latency_report(self):
        metrics = self.collector_with_latencies([1.0, 2.0, 10.0], name="A")
        for i, latency in enumerate((5.0, 5.0)):
            metrics.record_query("B", 1, float(i), float(i) + latency)
        report = metrics.tail_latency_report()
        assert set(report) == {"A", "B"}
        assert report["A"]["p50"] == pytest.approx(2.0)
        assert report["A"]["p99"] == pytest.approx(10.0)
        assert report["B"]["p95"] == pytest.approx(5.0)

    def test_tail_latencies_from_simulated_run(self):
        import numpy as np

        from repro.harness import run_workload
        from repro.storage import ColumnType, Database
        from repro.workloads import sql_workload

        db = Database("p")
        table = db.create_table("t", nominal_rows=1000)
        table.add_column("a", ColumnType.INT32,
                         np.arange(100, dtype=np.int32))
        queries = sql_workload(db, {"q": "select sum(a) as s from t"})
        run = run_workload(db, queries, "cpu_only", users=4, repetitions=8)
        report = run.metrics.tail_latency_report()
        assert report["q"]["p50"] <= report["q"]["p99"]
