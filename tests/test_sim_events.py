"""Unit tests for the DES kernel: events, processes, conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupted


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        assert env.now == 5.0
        yield env.timeout(2.5)
        assert env.now == 7.5

    env.process(proc())
    env.run()
    assert env.now == 7.5


def test_timeout_value_is_delivered():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child():
        yield env.timeout(3.0)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(3.0, 42)]


def test_events_at_same_time_processed_in_creation_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter():
        value = yield gate
        woke.append((env.now, value))

    def trigger():
        yield env.timeout(4.0)
        gate.succeed("go")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert woke == [(4.0, "go")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    def trigger():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_escalates_to_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("unnoticed")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unnoticed"):
        env.run()


def test_process_exception_propagates_to_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield env.process(child())
        except KeyError as error:
            caught.append(error.args[0])

    env.process(parent())
    env.run()
    assert caught == ["inner"]


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    trace = []

    def proc():
        done = env.timeout(0.0, value="x")
        yield env.timeout(1.0)
        # `done` triggered at t=0 and has been processed by now.
        value = yield done
        trace.append((env.now, value))

    env.process(proc())
    env.run()
    assert trace == [(1.0, "x")]


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_all_of_waits_for_slowest():
    env = Environment()
    result = []

    def proc():
        events = [env.timeout(t, value=t) for t in (1.0, 5.0, 3.0)]
        values = yield env.all_of(events)
        result.append((env.now, sorted(values.values())))

    env.process(proc())
    env.run()
    assert result == [(5.0, [1.0, 3.0, 5.0])]


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    result = []

    def proc():
        values = yield AllOf(env, [])
        result.append((env.now, values))

    env.process(proc())
    env.run()
    assert result == [(0.0, {})]


def test_all_of_fails_fast_on_first_failure():
    env = Environment()
    caught = []

    def failing():
        yield env.timeout(1.0)
        raise ValueError("dead")

    def proc():
        try:
            yield env.all_of([env.process(failing()), env.timeout(10.0)])
        except ValueError:
            caught.append(env.now)

    env.process(proc())
    env.run()
    assert caught == [1.0]


def test_any_of_returns_on_first_completion():
    env = Environment()
    result = []

    def proc():
        values = yield AnyOf(env, [env.timeout(4.0, "slow"), env.timeout(2.0, "fast")])
        result.append((env.now, list(values.values())))

    env.process(proc())
    env.run()
    assert result == [(2.0, ["fast"])]


def test_interrupt_wakes_waiting_process():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupted as interruption:
            trace.append((env.now, interruption.cause))

    def interrupter(victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert trace == [(3.0, "wake up")]


def test_interrupt_finished_process_is_an_error():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_run_until_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(10.0)

    env.process(proc())
    env.run(until=4.0)
    assert env.now == 4.0
    env.run()
    assert env.now == 10.0


def test_run_backwards_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok and p.value == "done"
