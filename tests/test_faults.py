"""Tests for deterministic fault injection and the resilience layer:
config parsing, injector determinism, the circuit-breaker state
machine, retry/backoff, and the end-to-end guarantees (zero overhead
when disabled, determinism, faults cost time but never correctness)."""

import pytest

from repro.engine.execution import (
    BreakerState,
    CircuitBreaker,
    ResilienceManager,
    RetryPolicy,
)
from repro.faults import FAULT_CLASSES, FAULTS_ENV, FaultConfig, FaultInjector
from repro.harness.runner import run_workload
from repro.metrics import MetricsCollector
from repro.workloads import ssb


# ---------------------------------------------------------------------------
# FaultConfig
# ---------------------------------------------------------------------------

class TestFaultConfig:
    def test_defaults_are_disabled(self):
        config = FaultConfig()
        assert not config.enabled
        assert config.rates() == {name: 0.0 for name in FAULT_CLASSES}

    def test_uniform_sets_every_class(self):
        config = FaultConfig.uniform(0.25, seed=11)
        assert config.enabled
        assert all(rate == 0.25 for rate in config.rates().values())
        assert config.seed == 11

    def test_parse_key_value(self):
        config = FaultConfig.parse("pcie=0.01, kernel=0.005, seed=42")
        assert config.pcie == 0.01
        assert config.kernel == 0.005
        assert config.stall == 0.0
        assert config.seed == 42

    def test_parse_bare_rate_is_uniform(self):
        config = FaultConfig.parse("0.02")
        assert all(rate == 0.02 for rate in config.rates().values())

    def test_parse_bare_rate_keeps_explicit_overrides(self):
        config = FaultConfig.parse("0.02,pcie=0.5")
        assert config.pcie == 0.5
        assert config.kernel == 0.02

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultConfig.parse("warp=0.1")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultConfig.parse("lots of faults please")

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="outside"):
            FaultConfig(pcie=1.5)
        with pytest.raises(ValueError):
            FaultConfig(kernel=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(breaker_threshold=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultConfig.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "stall=0.3,seed=9")
        config = FaultConfig.from_env()
        assert config.stall == 0.3 and config.seed == 9

    def test_coerce(self):
        assert FaultConfig.coerce(None) is None
        config = FaultConfig.uniform(0.1)
        assert FaultConfig.coerce(config) is config
        assert FaultConfig.coerce("0.1").pcie == 0.1
        with pytest.raises(TypeError):
            FaultConfig.coerce(0.1)

    def test_with_seed(self):
        assert FaultConfig.uniform(0.1, seed=1).with_seed(5).seed == 5


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        config = FaultConfig.uniform(0.3, seed=13)
        first = FaultInjector(config)
        second = FaultInjector(config)
        rolls_a = [first.roll("pcie", "gpu0") for _ in range(200)]
        rolls_b = [second.roll("pcie", "gpu0") for _ in range(200)]
        assert rolls_a == rolls_b
        assert first.schedule_digest() == second.schedule_digest()
        assert first.total_injected == second.total_injected > 0

    def test_different_seed_different_schedule(self):
        a = FaultInjector(FaultConfig.uniform(0.3, seed=1))
        b = FaultInjector(FaultConfig.uniform(0.3, seed=2))
        rolls_a = [a.roll("kernel", "gpu0") for _ in range(200)]
        rolls_b = [b.roll("kernel", "gpu0") for _ in range(200)]
        assert rolls_a != rolls_b

    def test_streams_are_independent_per_class(self):
        """Raising one class's rate must not shift another's schedule."""
        low = FaultInjector(FaultConfig(kernel=0.3, pcie=0.0, seed=7))
        high = FaultInjector(FaultConfig(kernel=0.3, pcie=1.0, seed=7))
        schedule_low = []
        schedule_high = []
        for _ in range(100):
            low.roll("pcie", "gpu0")
            high.roll("pcie", "gpu0")
            schedule_low.append(low.roll("kernel", "gpu0"))
            schedule_high.append(high.roll("kernel", "gpu0"))
        assert schedule_low == schedule_high

    def test_zero_rate_never_rolls_or_draws(self):
        injector = FaultInjector(FaultConfig(pcie=0.0, kernel=1.0))
        assert not any(injector.roll("pcie", "gpu0") for _ in range(50))
        assert injector.total_injected == 0
        # the pcie stream was never consumed: first draw matches a
        # fresh injector's
        fresh = FaultInjector(FaultConfig(pcie=0.0, kernel=1.0))
        assert injector.fraction("pcie") == fresh.fraction("pcie")

    def test_rate_one_always_injects(self):
        injector = FaultInjector(FaultConfig(reset=1.0))
        assert all(injector.roll("reset", "gpu0") for _ in range(20))
        assert injector.injected["reset"] == 20
        assert injector.injected_by_device[("reset", "gpu0")] == 20

    def test_digest_reflects_order_and_device(self):
        a = FaultInjector(FaultConfig.uniform(1.0, seed=3))
        b = FaultInjector(FaultConfig.uniform(1.0, seed=3))
        a.roll("pcie", "gpu0")
        a.roll("pcie", "gpu1")
        b.roll("pcie", "gpu1")
        b.roll("pcie", "gpu0")
        assert a.schedule_digest() != b.schedule_digest()

    def test_summary_omits_zero_classes(self):
        injector = FaultInjector(FaultConfig(stall=1.0))
        injector.roll("stall", "gpu0")
        assert injector.summary() == {"stall": 1}


# ---------------------------------------------------------------------------
# RetryPolicy / CircuitBreaker
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=4, base_seconds=0.01,
                             multiplier=2.0)
        assert policy.backoff_seconds(0) == pytest.approx(0.01)
        assert policy.backoff_seconds(1) == pytest.approx(0.02)
        assert policy.backoff_seconds(3) == pytest.approx(0.08)


class TestCircuitBreaker:
    def make(self, **kwargs):
        transitions = []
        defaults = dict(threshold=3, open_seconds=1.0, probes=1)
        defaults.update(kwargs)
        breaker = CircuitBreaker(
            "gpu0",
            on_transition=lambda dev, old, new, now: transitions.append(
                (old, new, now)
            ),
            **defaults
        )
        return breaker, transitions

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, transitions = self.make()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.OPEN
        assert transitions == [("closed", "open", 0.2)]
        assert not breaker.admit(0.3)
        assert not breaker.available(0.3)

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state is BreakerState.CLOSED

    def test_half_opens_after_cooldown_and_admits_probes(self):
        breaker, _ = self.make(probes=2)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert not breaker.admit(0.5)
        assert breaker.available(1.3)  # past opened_at + open_seconds
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.admit(1.3)
        assert breaker.admit(1.3)
        assert not breaker.admit(1.3)  # probe budget exhausted

    def test_probe_success_closes(self):
        breaker, transitions = self.make()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.admit(1.5)
        breaker.record_success(1.6)
        assert breaker.state is BreakerState.CLOSED
        assert [(old, new) for old, new, _ in transitions] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_probe_failure_reopens(self):
        breaker, _ = self.make()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.admit(1.5)
        breaker.record_failure(1.6)
        assert breaker.state is BreakerState.OPEN
        # the cooldown restarts from the re-opening
        assert not breaker.available(1.7)
        assert breaker.available(2.7)


class TestResilienceManager:
    def test_inert_without_config(self):
        manager = ResilienceManager(config=None)
        assert not manager.enabled
        assert manager.admit("gpu0", 0.0)
        assert manager.available("gpu0", 0.0)
        assert manager.placement_penalty("gpu0", 0.0) == 0.0
        manager.record_failure("gpu0", 0.0)
        manager.record_success("gpu0", 0.0)
        assert manager.breaker_states() == {}  # no state was created

    def test_breaker_tuning_comes_from_config(self):
        config = FaultConfig.uniform(0.1, breaker_threshold=1,
                                     breaker_open_seconds=9.0,
                                     breaker_probes=4, max_retries=7)
        manager = ResilienceManager(config=config)
        assert manager.policy.max_retries == 7
        breaker = manager.breaker("gpu0")
        assert breaker.threshold == 1
        assert breaker.open_seconds == 9.0
        assert breaker.probes == 4

    def test_placement_penalty_infinite_while_open(self):
        manager = ResilienceManager(config=FaultConfig.uniform(
            0.1, breaker_threshold=1))
        manager.record_failure("gpu0", 0.0)
        assert manager.placement_penalty("gpu0", 0.0) == float("inf")
        assert not manager.available("gpu0", 0.0)
        assert manager.breaker_states() == {"gpu0": "open"}

    def test_transitions_land_in_metrics(self):
        metrics = MetricsCollector()
        manager = ResilienceManager(
            config=FaultConfig.uniform(0.1, breaker_threshold=1),
            metrics=metrics,
        )
        manager.record_failure("gpu0", 1.25)
        assert metrics.breaker_transitions == [
            ("gpu0", "closed", "open", 1.25)
        ]
        assert metrics.breaker_transition_counts()["open"] == 1


# ---------------------------------------------------------------------------
# End to end: the tentpole guarantees
# ---------------------------------------------------------------------------

def _run(database, faults, strategy="runtime", **kwargs):
    defaults = dict(users=2, repetitions=2, collect_results=True)
    defaults.update(kwargs)
    return run_workload(database, ssb.workload(database), strategy,
                        faults=faults, **defaults)


def _payload_rows(run):
    return {name: table.row_tuples() for name, table in run.results.items()}


HIGH_RATE = FaultConfig.uniform(0.5, seed=3, breaker_threshold=2,
                                breaker_open_seconds=0.01)


class TestEndToEnd:
    def test_zero_overhead_when_disabled(self, ssb_db):
        off = _run(ssb_db, faults=None)
        zero = _run(ssb_db, faults="pcie=0")  # all-zero spec
        assert off.seconds == zero.seconds
        assert _payload_rows(off) == _payload_rows(zero)
        assert zero.faults_injected == 0
        assert zero.fault_digest is None

    def test_same_seed_is_deterministic(self, ssb_db):
        first = _run(ssb_db, faults=HIGH_RATE)
        second = _run(ssb_db, faults=HIGH_RATE)
        assert first.faults_injected == second.faults_injected > 0
        assert first.fault_digest == second.fault_digest
        assert first.seconds == second.seconds
        assert _payload_rows(first) == _payload_rows(second)

    def test_different_seed_changes_the_schedule(self, ssb_db):
        first = _run(ssb_db, faults=HIGH_RATE)
        second = _run(ssb_db, faults=HIGH_RATE.with_seed(99))
        assert first.fault_digest != second.fault_digest

    def test_faults_cost_time_never_correctness(self, ssb_db):
        clean = _run(ssb_db, faults=None)
        faulted = _run(ssb_db, faults=HIGH_RATE, validate=True)
        assert faulted.faults_injected > 0
        assert _payload_rows(faulted) == _payload_rows(clean)
        assert faulted.seconds >= clean.seconds

    def test_cpu_only_path_is_never_injected(self, ssb_db):
        run = run_workload(ssb_db, ssb.workload(ssb_db), "cpu_only",
                           faults=FaultConfig.uniform(1.0), users=2)
        assert run.faults_injected == 0
        assert run.metrics.aborts == 0

    def test_fault_accounting_reaches_the_metrics(self, ssb_db):
        run = _run(ssb_db, faults=HIGH_RATE)
        metrics = run.metrics
        assert metrics.aborts > 0
        assert sum(metrics.faults.values()) == metrics.aborts
        assert metrics.retries > 0
        summary = metrics.fault_summary()
        assert summary["fault_aborts"] == metrics.aborts
        assert summary["retries"] == metrics.retries
        report = metrics.per_query_fault_report()
        assert sum(row["aborts"] for row in report.values()) \
            == metrics.aborts
        assert run.fault_classes is not None
        assert sum(run.fault_classes.values()) == run.faults_injected

    def test_trace_attributes_faults_to_devices(self, ssb_db):
        run = _run(ssb_db, faults=HIGH_RATE, trace=True)
        fault_events = [e for e in run.trace.events if e.aborted]
        assert fault_events
        assert all(e.fault for e in fault_events if e.fault != "oom")
        assert "aborts by fault@device" in run.trace.summary()

    def test_breakers_open_and_recover_under_sustained_faults(self, ssb_db):
        run = _run(ssb_db, faults=HIGH_RATE, repetitions=4)
        counts = run.metrics.breaker_transition_counts()
        assert counts["open"] > 0
        assert counts["half_open"] > 0
        # while open, placement skipped the device at least once
        assert sum(run.metrics.breaker_skips.values()) > 0

    def test_vectorized_model_survives_faults(self, ssb_db):
        clean = _run(ssb_db, faults=None,
                     processing_model="vectorized")
        faulted = _run(ssb_db, faults=HIGH_RATE,
                       processing_model="vectorized", validate=True)
        assert faulted.faults_injected > 0
        assert _payload_rows(faulted) == _payload_rows(clean)

    def test_chopping_model_survives_faults(self, ssb_db):
        clean = _run(ssb_db, faults=None, strategy="chopping")
        faulted = _run(ssb_db, faults=HIGH_RATE, strategy="chopping",
                       validate=True)
        assert faulted.faults_injected > 0
        assert _payload_rows(faulted) == _payload_rows(clean)
