"""Tests for execution tracing."""

import pytest

from repro.harness import run_workload
from repro.hardware import SystemConfig
from repro.hardware.calibration import MIB
from repro.metrics import ExecutionTrace
from repro.workloads import sql_workload


SQL = {
    "q": (
        "select region, sum(amount) as s from sales, store "
        "where skey = id and amount < 40 group by region"
    )
}


def test_trace_disabled_by_default(toy_db):
    run = run_workload(toy_db, sql_workload(toy_db, SQL), "cpu_only")
    assert run.trace is None


def test_trace_records_every_operator(toy_db):
    run = run_workload(toy_db, sql_workload(toy_db, SQL), "cpu_only",
                       repetitions=2, trace=True)
    # 4 operators per execution x 2 executions
    assert len(run.trace) == 8
    assert all(e.processor == "cpu" for e in run.trace.events)
    assert all(e.query == "q" for e in run.trace.events)


def test_trace_windows_are_well_formed(toy_db):
    run = run_workload(toy_db, sql_workload(toy_db, SQL),
                       "data_driven_chopping", repetitions=3, trace=True)
    for event in run.trace.events:
        assert event.end >= event.start
        assert event.end <= run.seconds + 1e-9


def test_trace_captures_gpu_and_fallback(toy_db):
    config = SystemConfig(gpu_memory_bytes=5 * MIB, gpu_cache_bytes=4 * MIB)
    run = run_workload(toy_db, sql_workload(toy_db, SQL), "gpu_only",
                       config=config, trace=True)
    aborted = run.trace.aborted_events()
    assert aborted  # the starved device forces aborts
    assert any(e.processor == "cpu" for e in run.trace.events)
    # metrics and trace agree on the abort count
    assert len(aborted) == run.metrics.aborts


def test_trace_busy_seconds_by_processor(toy_db):
    run = run_workload(toy_db, sql_workload(toy_db, SQL), "cpu_only",
                       trace=True)
    busy = run.trace.busy_seconds()
    assert set(busy) == {"cpu"}
    assert busy["cpu"] > 0


def test_summary_and_timeline_render(toy_db):
    run = run_workload(toy_db, sql_workload(toy_db, SQL), "gpu_only",
                       repetitions=2, trace=True)
    summary = run.trace.summary()
    assert "operator executions" in summary
    assert "slowest operators" in summary
    timeline = run.trace.timeline_text(width=40)
    # all four operators ran on the (hot) device for this plan
    assert "gpu" in timeline
    assert "#" in timeline


def test_empty_trace_renders():
    trace = ExecutionTrace()
    assert trace.timeline_text() == "(empty trace)"
    assert "0 operator executions" in trace.summary()


def test_processor_ordering_host_first():
    trace = ExecutionTrace()
    trace.record("a", "selection", "gpu2", "q", 0.0, 1.0)
    trace.record("b", "selection", "cpu", "q", 0.0, 1.0)
    trace.record("c", "selection", "gpu", "q", 0.0, 1.0)
    assert trace.processors() == ["cpu", "gpu", "gpu2"]


def test_cli_trace_flag(capsys):
    from repro.cli import main

    code = main([
        "run", "--scale-factor", "1", "--repetitions", "1",
        "--strategy", "cpu_only", "--trace",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline" in out
    assert "operator executions" in out
