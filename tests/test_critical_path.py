"""Unit tests for the Critical Path optimizer and its cardinality
estimator."""

import pytest

from tests.conftest import make_context
from repro.core.placement import CriticalPath
from repro.engine import Planner
from repro.engine.cardinality import estimate_selectivity
from repro.engine.expressions import ColumnRef, Comparison, Literal
from repro.engine.operators import HashJoin, ScanSelect
from repro.sql import bind


JOIN_SQL = (
    "select region, sum(amount) as s from sales, store "
    "where skey = id and amount < 40 group by region"
)


def make_plan(db, sql=JOIN_SQL):
    return Planner(db).plan(bind(sql, db, name="q"))


class TestCardinalityEstimation:
    def test_no_predicate_is_one(self, toy_db):
        assert estimate_selectivity(toy_db, "sales", None) == 1.0

    def test_uniform_predicate(self, toy_db):
        predicate = Comparison(
            "<", ColumnRef("sales", "amount"), Literal(50)
        )
        estimate = estimate_selectivity(toy_db, "sales", predicate)
        # amount uniform in [1, 100)
        assert 0.3 < estimate < 0.7

    def test_impossible_predicate(self, toy_db):
        predicate = Comparison(
            ">", ColumnRef("sales", "amount"), Literal(10**9)
        )
        assert estimate_selectivity(toy_db, "sales", predicate) == 0.0

    def test_small_tables_use_all_rows(self, toy_db):
        predicate = Comparison("<", ColumnRef("store", "size"), Literal(100))
        estimate = estimate_selectivity(toy_db, "store", predicate)
        # store has 20 rows, sizes 0..190: exactly 10 below 100
        assert estimate == pytest.approx(0.5)


class TestOpEstimates:
    def test_join_cardinality_propagates_build_selectivity(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(
            toy_db,
            "select sum(amount) as s from sales, store "
            "where skey = id and size < 100",
        )
        cp = CriticalPath()
        estimates = cp._estimate_sizes(ctx, plan)
        join = [op for op in plan.operators if isinstance(op, HashJoin)][0]
        join_estimate = estimates[join.op_id]
        fact_rows = toy_db.table("sales").nominal_rows
        # half the stores survive the filter: ~half the fact rows join
        assert join_estimate.out_rows == pytest.approx(
            fact_rows * 0.5, rel=0.1
        )

    def test_filtered_scan_out_rows(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(
            toy_db, "select amount from sales where amount < 40"
        )
        cp = CriticalPath()
        estimates = cp._estimate_sizes(ctx, plan)
        scan = plan.leaves[0]
        fact_rows = toy_db.table("sales").nominal_rows
        assert estimates[scan.op_id].out_rows == pytest.approx(
            fact_rows * 0.4, rel=0.2
        )

    def test_bare_scan_has_zero_out_bytes(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(toy_db)
        cp = CriticalPath()
        estimates = cp._estimate_sizes(ctx, plan)
        bare = [
            op for op in plan.leaves
            if isinstance(op, ScanSelect) and op.predicate is None
        ]
        for op in bare:
            assert estimates[op.op_id].out_bytes == 0.0


class TestCriticalPathPlacement:
    def test_cold_cache_keeps_large_transfers_off_gpu(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(toy_db)
        CriticalPath().prepare_plan(ctx, plan)
        # with nothing cached, the fact-side selection (which would
        # require a 4 MB-nominal transfer) stays on the CPU
        fact_scan = [
            op for op in plan.leaves
            if isinstance(op, ScanSelect) and op.table == "sales"
            and op.predicate is not None
        ]
        for op in fact_scan:
            assert op.placement == "cpu"

    def test_hot_cache_promotes_the_join_pipeline(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        for column in toy_db.columns():
            hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
        plan = make_plan(toy_db)
        CriticalPath().prepare_plan(ctx, plan)
        join = [op for op in plan.operators if isinstance(op, HashJoin)][0]
        assert join.placement == "gpu"

    def test_every_operator_gets_a_placement(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(toy_db)
        CriticalPath().prepare_plan(ctx, plan)
        assert all(op.placement in ("cpu", "gpu") for op in plan.operators)

    def test_host_only_operators_stay_on_cpu(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        for column in toy_db.columns():
            hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
        plan = make_plan(
            toy_db, "select amount, price from sales where amount < 40"
        )
        CriticalPath().prepare_plan(ctx, plan)
        for op in plan.operators:
            if op.cpu_only:
                assert op.placement == "cpu"

    def test_iteration_budget_respected(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        plan = make_plan(toy_db)
        strategy = CriticalPath()
        strategy.max_iterations = 0
        strategy.prepare_plan(ctx, plan)
        # no promotions possible: pure CPU plan
        assert all(op.placement == "cpu" for op in plan.operators)

    def test_plan_cost_decreases_or_stays_with_useful_promotions(self, toy_db):
        env, hw, ctx = make_context(toy_db)
        for column in toy_db.columns():
            hw.gpu_cache.admit(column.key, column.nominal_bytes, pinned=True)
        plan = make_plan(toy_db)
        cp = CriticalPath()
        estimates = cp._estimate_sizes(ctx, plan)
        cpu_cost = cp._plan_cost(ctx, plan, frozenset(), estimates)
        all_leaves = frozenset(l.op_id for l in plan.leaves)
        gpu_cost = cp._plan_cost(ctx, plan, all_leaves, estimates)
        assert gpu_cost < cpu_cost  # hot cache: the GPU plan wins
