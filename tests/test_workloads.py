"""Tests for the SSB / TPC-H data generators and workload definitions."""

import numpy as np
import pytest

from repro.workloads import micro, ssb, tpch


class TestSsbGenerator:
    def test_nominal_cardinalities_follow_spec(self):
        sizes = ssb.nominal_rows(10)
        assert sizes["lineorder"] == 60_000_000
        assert sizes["customer"] == 300_000
        assert sizes["supplier"] == 20_000
        assert sizes["date"] == 2_556
        # part grows logarithmically
        assert ssb.nominal_rows(1)["part"] == 200_000
        assert ssb.nominal_rows(10)["part"] == 200_000 * 4

    def test_deterministic_generation(self):
        db1 = ssb.generate(0.01, data_scale=0.01, seed=9)
        db2 = ssb.generate(0.01, data_scale=0.01, seed=9)
        assert np.array_equal(
            db1.column("lineorder.lo_revenue").values,
            db2.column("lineorder.lo_revenue").values,
        )

    def test_foreign_keys_reference_dimensions(self, ssb_db):
        lo = ssb_db.table("lineorder")
        assert lo.column("lo_custkey").values.max() <= (
            ssb_db.table("customer").actual_rows
        )
        assert lo.column("lo_suppkey").values.max() <= (
            ssb_db.table("supplier").actual_rows
        )
        assert lo.column("lo_partkey").values.max() <= (
            ssb_db.table("part").actual_rows
        )
        datekeys = set(ssb_db.column("date.d_datekey").values.tolist())
        orderdates = set(lo.column("lo_orderdate").values.tolist())
        assert orderdates <= datekeys

    def test_value_domains(self, ssb_db):
        lo = ssb_db.table("lineorder")
        assert lo.column("lo_quantity").values.min() >= 1
        assert lo.column("lo_quantity").values.max() <= 50
        assert lo.column("lo_discount").values.min() >= 0
        assert lo.column("lo_discount").values.max() <= 10
        assert lo.column("lo_tax").values.max() <= 8

    def test_city_naming_convention(self, ssb_db):
        cities = ssb_db.column("customer.c_city").dictionary
        for city in cities:
            assert len(city) == 10
            assert city[-1].isdigit()

    def test_brand_category_consistency(self, ssb_db):
        part = ssb_db.table("part")
        mfgr = part.column("p_mfgr")
        category = part.column("p_category")
        brand = part.column("p_brand1")
        for row in range(0, part.actual_rows, 97):
            m = mfgr.decode(mfgr.values[row])
            c = category.decode(category.values[row])
            b = brand.decode(brand.values[row])
            assert c.startswith(m)
            assert b.startswith(c)

    def test_dimension_regions_match_nations(self, ssb_db):
        customer = ssb_db.table("customer")
        nation = customer.column("c_nation")
        region = customer.column("c_region")
        for row in range(0, customer.actual_rows, 53):
            n = nation.decode(nation.values[row])
            r = region.decode(region.values[row])
            assert ssb.REGION_OF_NATION[n] == r

    def test_date_dimension_fields(self, ssb_db):
        date = ssb_db.table("date")
        assert date.actual_rows == 2556
        years = date.column("d_year").values
        assert years.min() == 1992 and years.max() == 1998
        ymn = date.column("d_yearmonthnum").values
        assert ymn.min() == 199201
        weeks = date.column("d_weeknuminyear").values
        assert weeks.min() >= 1 and weeks.max() <= 53

    def test_workload_has_13_queries(self, ssb_db):
        queries = ssb.workload(ssb_db)
        assert len(queries) == 13
        assert [q.name for q in queries][:3] == ["Q1.1", "Q1.2", "Q1.3"]

    def test_workload_selection(self, ssb_db):
        queries = ssb.workload(ssb_db, ["Q3.3"])
        assert len(queries) == 1
        assert queries[0].name == "Q3.3"

    def test_column_sizes_match_paper(self):
        """At SF 10 one lineorder int32 column is the paper's ~218 MB."""
        db = ssb.generate(10, data_scale=1e-5)
        nbytes = db.column("lineorder.lo_discount").nominal_bytes
        assert nbytes == 60_000_000 * 4
        assert 200 * 2**20 < nbytes < 240 * 2**20

    def test_serial_selection_working_set_is_1_9_gb(self):
        """The B.1 working set: eight columns, 1.9 GB at SF 10."""
        db = ssb.generate(10, data_scale=1e-5)
        total = sum(
            db.column(key).nominal_bytes
            for key in micro.SERIAL_SELECTION_COLUMNS
        )
        assert total == pytest.approx(1.9e9, rel=0.05)


class TestTpchGenerator:
    def test_nominal_cardinalities(self):
        sizes = tpch.nominal_rows(10)
        assert sizes["lineitem"] == 60_000_000
        assert sizes["orders"] == 15_000_000
        assert sizes["nation"] == 25
        assert sizes["region"] == 5

    def test_foreign_keys(self, tpch_db):
        li = tpch_db.table("lineitem")
        assert li.column("l_orderkey").values.max() <= (
            tpch_db.table("orders").actual_rows
        )
        assert tpch_db.column("nation.n_regionkey").values.max() <= 4
        assert tpch_db.column("supplier.s_nationkey").values.max() <= 24

    def test_dates_are_valid_yyyymmdd(self, tpch_db):
        dates = tpch_db.column("lineitem.l_shipdate").values
        years = dates // 10000
        months = dates // 100 % 100
        days = dates % 100
        assert years.min() >= 1992 and years.max() <= 1998
        assert months.min() >= 1 and months.max() <= 12
        assert days.min() >= 1 and days.max() <= 28

    def test_shipyear_consistent_with_shipdate(self, tpch_db):
        dates = tpch_db.column("lineitem.l_shipdate").values
        years = tpch_db.column("lineitem.l_shipyear").values
        assert np.array_equal(dates // 10000, years)

    def test_workload_has_6_queries(self, tpch_db):
        queries = tpch.workload(tpch_db)
        assert [q.name for q in queries] == ["Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]

    def test_deterministic(self):
        db1 = tpch.generate(0.01, data_scale=0.01, seed=4)
        db2 = tpch.generate(0.01, data_scale=0.01, seed=4)
        assert np.array_equal(
            db1.column("lineitem.l_discount").values,
            db2.column("lineitem.l_discount").values,
        )


class TestMicroWorkloads:
    def test_serial_selection_has_8_queries(self, ssb_db):
        queries = micro.serial_selection_workload(ssb_db)
        assert len(queries) == 8
        # each query's selection operator filters a different column
        filter_columns = set()
        for query in queries:
            (leaf,) = query.template_plan().leaves
            scan_columns = leaf.required_columns()
            assert len(scan_columns) == 1
            assert scan_columns <= set(micro.SERIAL_SELECTION_COLUMNS)
            filter_columns |= scan_columns
        assert len(filter_columns) == 8

    def test_parallel_selection_plan_is_a_four_op_chain(self, ssb_db):
        plan = micro.build_parallel_selection_plan(ssb_db)
        kinds = [op.kind for op in plan.operators]
        # four selection operators executed consecutively + host
        # materialisation
        assert kinds == ["selection"] * 4 + ["projection"]
        # a chain: every operator has at most one child
        for op in plan.operators:
            assert len(op.children) <= 1

    def test_parallel_selection_uses_two_columns(self, ssb_db):
        plan = micro.build_parallel_selection_plan(ssb_db)
        selection_columns = set()
        for op in plan.operators:
            if op.kind == "selection":
                selection_columns |= op.required_columns()
        assert selection_columns == {
            "lineorder.lo_discount", "lineorder.lo_quantity",
        }

    def test_first_operator_footprint_is_paper_bound(self):
        """The B.2 chain's first operator needs 3.25x a fact column —
        the quantity in the paper's n = M / (3.25 |C|) bound."""
        from repro.hardware.calibration import COGADB_PROFILE

        db = ssb.generate(10, data_scale=1e-5)
        plan = micro.build_parallel_selection_plan(db)
        first = plan.operators[0]
        footprint = first.device_footprint_bytes(COGADB_PROFILE, db, [])
        column = db.column("lineorder.lo_discount").nominal_bytes
        assert footprint == int(3.25 * column)
