"""Property-based end-to-end testing: random SQL queries must agree
between the physical engine and the naive reference evaluator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Planner, execute_reference
from repro.engine.execution import execute_functional
from repro.sql import bind
from repro.storage import ColumnType, Database


def build_database(seed):
    rng = np.random.default_rng(seed)
    db = Database("rand")
    n = 300
    fact = db.create_table("f", nominal_rows=100_000)
    fact.add_column("fk", ColumnType.INT32, rng.integers(1, 11, n))
    fact.add_column("x", ColumnType.INT32, rng.integers(-20, 21, n))
    fact.add_column("y", ColumnType.INT32, rng.integers(0, 100, n))
    dim = db.create_table("d", nominal_rows=10)
    dim.add_column("id", ColumnType.INT32, np.arange(1, 11))
    dim.add_column("w", ColumnType.INT32, rng.integers(0, 5, 10))
    return db


DATABASES = {seed: build_database(seed) for seed in range(3)}

comparison_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
fact_columns = st.sampled_from(["x", "y"])
literals = st.integers(-25, 105)


@st.composite
def predicates(draw, max_conjuncts=3):
    """Random conjunctions of comparisons / BETWEEN / IN on f."""
    n = draw(st.integers(1, max_conjuncts))
    parts = []
    for _ in range(n):
        column = draw(fact_columns)
        shape = draw(st.integers(0, 2))
        if shape == 0:
            parts.append("{} {} {}".format(
                column, draw(comparison_ops), draw(literals)))
        elif shape == 1:
            low = draw(literals)
            high = draw(literals)
            parts.append("{} between {} and {}".format(column, low, high))
        else:
            values = draw(st.lists(literals, min_size=1, max_size=4))
            parts.append("{} in ({})".format(
                column, ", ".join(map(str, values))))
    return " and ".join(parts)


def rows_match(engine_rows, reference_rows):
    if len(engine_rows) != len(reference_rows):
        return False
    for got, want in zip(sorted(engine_rows), sorted(reference_rows)):
        for a, b in zip(got, want):
            if isinstance(a, float) or isinstance(b, float):
                if not math.isclose(float(a), float(b), rel_tol=1e-9,
                                    abs_tol=1e-9):
                    return False
            elif int(a) != int(b):
                return False
    return True


def check(db, sql):
    spec = bind(sql, db, name="rand")
    plan = Planner(db).plan(spec)
    engine_rows = execute_functional(plan, db).payload.row_tuples()
    reference_rows = execute_reference(spec, db)
    assert rows_match(engine_rows, reference_rows), sql


@given(seed=st.integers(0, 2), predicate=predicates())
@settings(max_examples=50, deadline=None)
def test_random_filtered_scan(seed, predicate):
    db = DATABASES[seed]
    check(db, "select x, y from f where {}".format(predicate))


@given(seed=st.integers(0, 2), predicate=predicates(),
       agg=st.sampled_from(["sum", "count", "min", "max", "avg"]),
       column=fact_columns)
@settings(max_examples=50, deadline=None)
def test_random_scalar_aggregate(seed, predicate, agg, column):
    db = DATABASES[seed]
    inner = "*" if agg == "count" else column
    check(db, "select {}({}) as v from f where {}".format(
        agg, inner, predicate))


@given(seed=st.integers(0, 2), predicate=predicates(max_conjuncts=2),
       agg=st.sampled_from(["sum", "count", "min", "max"]))
@settings(max_examples=40, deadline=None)
def test_random_grouped_aggregate(seed, predicate, agg):
    db = DATABASES[seed]
    inner = "*" if agg == "count" else "y"
    check(db, "select fk, {}({}) as v from f where {} group by fk".format(
        agg, inner, predicate))


@given(seed=st.integers(0, 2), predicate=predicates(max_conjuncts=2))
@settings(max_examples=40, deadline=None)
def test_random_join_aggregate(seed, predicate):
    db = DATABASES[seed]
    check(db, (
        "select w, sum(x) as s, count(*) as n from f, d "
        "where fk = id and {} group by w order by w"
    ).format(predicate))


@given(seed=st.integers(0, 2), predicate=predicates(max_conjuncts=2),
       threshold=st.integers(0, 20))
@settings(max_examples=30, deadline=None)
def test_random_having(seed, predicate, threshold):
    db = DATABASES[seed]
    check(db, (
        "select fk, count(*) as n from f where {} group by fk "
        "having n > {}"
    ).format(predicate, threshold))


@given(seed=st.integers(0, 2), predicate=predicates(max_conjuncts=2))
@settings(max_examples=30, deadline=None)
def test_random_distinct(seed, predicate):
    db = DATABASES[seed]
    check(db, "select distinct fk from f where {}".format(predicate))


@given(seed=st.integers(0, 2), predicate=predicates(max_conjuncts=2))
@settings(max_examples=20, deadline=None)
def test_random_query_simulated_matches_functional(seed, predicate):
    """The simulated executors return the functional result bit-for-bit."""
    from repro.harness import run_workload
    from repro.workloads import sql_workload

    db = DATABASES[seed]
    sql = (
        "select w, sum(y) as s from f, d where fk = id and {} group by w"
    ).format(predicate)
    queries = sql_workload(db, {"q": sql})
    expected = execute_functional(
        queries[0].template_plan(), db
    ).payload.row_tuples()
    run = run_workload(db, queries, "data_driven_chopping",
                       collect_results=True)
    assert run.results["q"].row_tuples() == expected
