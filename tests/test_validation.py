"""Tests for the built-in result validation of the runner."""

import numpy as np
import pytest

from repro.harness import ValidationError, run_workload
from repro.workloads import micro, sql_workload


QUERIES = {
    "agg": (
        "select region, sum(amount) as s, avg(price) as p "
        "from sales, store where skey = id group by region"
    ),
    "rows": "select amount, price from sales where amount < 12",
}


def test_validate_passes_on_correct_execution(toy_db):
    queries = sql_workload(toy_db, QUERIES)
    run = run_workload(toy_db, queries, "data_driven_chopping",
                       users=2, validate=True)
    assert run.seconds > 0
    # validate implies collection
    assert set(run.results) == set(QUERIES)


@pytest.mark.parametrize("strategy", ("gpu_only", "chopping"))
def test_validate_under_aborting_device(toy_db, strategy):
    from repro.hardware import SystemConfig
    from repro.hardware.calibration import MIB

    config = SystemConfig(gpu_memory_bytes=6 * MIB, gpu_cache_bytes=4 * MIB)
    queries = sql_workload(toy_db, QUERIES)
    run = run_workload(toy_db, queries, strategy, config=config,
                       users=3, repetitions=2, validate=True)
    assert run.seconds > 0


def test_validate_vectorized_model(toy_db):
    queries = sql_workload(toy_db, QUERIES)
    run_workload(toy_db, queries, "runtime",
                 processing_model="vectorized", validate=True)


def test_validate_detects_corruption(toy_db):
    """Corrupting a memoised payload must be caught."""
    queries = sql_workload(toy_db, {"agg": QUERIES["agg"]})
    # poison the template's memoised root result
    template = queries[0].template_plan()
    from repro.engine.execution import execute_functional

    execute_functional(template, toy_db)
    payload, actual, nominal, width = template.root._cached_result
    corrupted_columns = dict(payload.columns)
    corrupted_columns["s"] = payload.columns["s"] + 1
    from repro.engine.intermediates import ResultFrame

    template.root._cached_result = (
        ResultFrame(corrupted_columns, payload.dictionaries),
        actual, nominal, width,
    )
    with pytest.raises(ValidationError):
        run_workload(toy_db, queries, "cpu_only", validate=True)


def test_validate_skips_hand_built_plans(ssb_db):
    queries = micro.parallel_selection_workload(ssb_db)
    run = run_workload(ssb_db, queries, "cpu_only", validate=True)
    assert run.seconds > 0  # no spec: skipped, no error
